"""Multichannel broadcast: K=4 data channels vs the single channel.

Extension beyond the paper: the cycle's documents split across K
parallel data channels (``repro.broadcast.multichannel``), each carrying
a full data-segment budget, with the index program on its own replicated
channel and the second tier extended to ``<doc, channel, offset>``.

**The regime where K channels pay** (and the one this bench pins): a
*steady-state, wait-dominated* workload -- many selective queries whose
result sets are small and diverse relative to the union the server must
drain.  At K=1 such clients idle most of every cycle waiting for the
thin data pipe to reach their documents; at K=4 the demand-affinity
allocation co-locates each query's result set on one channel, so a
single-tuner client rides its channel while three other channels serve
other queries in parallel.  Gate: **K=4 mean access time <= 0.5x K=1**.

The converse is also worth remembering (measured during development,
not gated): when every client wants most of the broadcast, a single
tuner is download-bound and no channel count helps -- access time is
pinned by the client's own bandwidth, and naive allocations (spreading
popular documents across channels) actively hurt by forcing conflicts.

The K=4 run executes under observability and the per-channel server
metrics (air bytes, docs per channel, idle padding) are asserted into
the snapshot, so the channel balance is part of the recorded artifact.
"""

from __future__ import annotations

import json

from conftest import RESULTS_DIR

from repro import obs
from repro.experiments.report import format_table
from repro.obs.registry import metric_key
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xmlkit.generator import GeneratorConfig, generate_collection, dblp_like_dtd

NUM_CHANNELS = 4

#: Single-record DBLP-like documents: each document is one bibliography
#: record of one of five types, so structure-only queries are selective
#: (a ``/dblp/article/...`` query matches only article documents) and
#: *diverse* -- the property the multichannel win depends on.
GEN = GeneratorConfig(seed=7, max_repeat=1, repeat_prob=0.0, optional_prob=0.3)
DOCS = 500
BASE = dict(
    dtd="dblp",
    wildcard_prob=0.0,
    document_count=DOCS,
    n_q=60,
    cycle_data_capacity=20_000,
    arrival_cycles=2,
    max_cycles=900,
    channel_allocation="demand",
)


def _run_pair():
    documents = generate_collection(dblp_like_dtd(), DOCS, config=GEN)
    result_k1 = run_simulation(
        small_setup(num_data_channels=1, **BASE), documents=documents
    )
    with obs.observed() as registry:
        result_k4 = run_simulation(
            small_setup(num_data_channels=NUM_CHANNELS, **BASE),
            documents=documents,
        )
    return result_k1, result_k4, registry.snapshot()


def test_multichannel_speedup(benchmark):
    result_k1, result_k4, snapshot = benchmark.pedantic(
        _run_pair, rounds=1, iterations=1
    )
    assert result_k1.completed and result_k4.completed

    access_k1 = result_k1.mean_access_bytes("two-tier-multi")
    access_k4 = result_k4.mean_access_bytes("two-tier-multi")
    ratio = access_k4 / access_k1

    counters = snapshot["counters"]
    channel_air = {
        channel: counters[
            metric_key(
                "server.channel_air_bytes_total", {"channel": str(channel)}
            )
        ]
        for channel in range(NUM_CHANNELS)
    }
    idle = counters[metric_key("server.channel_idle_bytes_total", {})]
    conflicts = counters.get(
        metric_key(
            "client.channel_conflicts_total", {"protocol": "two-tier-multi"}
        ),
        0,
    )

    rows = [
        ("mean access time, K=1 (B)", access_k1),
        (f"mean access time, K={NUM_CHANNELS} (B)", access_k4),
        ("ratio K=4 / K=1", ratio),
        ("cross-channel conflicts (total)", conflicts),
        ("channel idle padding (B)", idle),
    ] + [
        (f"channel {channel} air bytes", air)
        for channel, air in sorted(channel_air.items())
    ]
    text = format_table(
        "Multichannel broadcast: K=4 vs single channel (demand allocation)",
        ("metric", "value"),
        rows,
        note=(
            f"{DOCS} single-record DBLP docs, N_Q={BASE['n_q']}, "
            f"capacity {BASE['cycle_data_capacity']} B per channel; "
            "wait-dominated steady state"
        ),
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "multichannel.txt").write_text(text + "\n", encoding="utf-8")
    (RESULTS_DIR / "multichannel_channels.json").write_text(
        json.dumps(
            {
                "ratio": ratio,
                "channel_air_bytes": channel_air,
                "idle_padding_bytes": idle,
                "conflicts": conflicts,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )

    # The gate: parallel channels at least halve mean access time here.
    assert ratio <= 0.5, (
        f"K={NUM_CHANNELS} access {access_k4:.0f} B vs K=1 {access_k1:.0f} B "
        f"(ratio {ratio:.3f} > 0.5)"
    )
    # Per-channel observability: every data channel actually carried load.
    for channel, air in channel_air.items():
        assert air > 0, f"channel {channel} aired nothing"
    # Conflicts existed and were resolved (the deferral machinery ran).
    assert conflicts > 0
