"""Figure 11: index-lookup tuning time, one-tier vs two-tier protocol.

Shapes asserted per panel (the paper's two observations in 4.2(3)):

1. "two-tier scheme outperforms one-tier scheme significantly" -- the
   two-tier lookup cost is strictly below one-tier at every point;
2. "parameters have a less significant impact on two-tier scheme which is
   much more stable" -- the two-tier series' relative spread is well
   below the one-tier series' spread in the panels where one-tier moves.
"""

from __future__ import annotations

from conftest import assert_strictly_cheaper, relative_spread

from repro.experiments import figures


def _series(figure):
    one = [row[1] for row in figure.rows]
    two = [row[2] for row in figure.rows]
    return one, two


def test_fig11a_tuning_vs_nq(benchmark, context, record_figure):
    figure = benchmark.pedantic(
        lambda: figures.fig11a(context), rounds=1, iterations=1
    )
    record_figure(figure)
    one, two = _series(figure)
    assert_strictly_cheaper(two, one)
    # One-tier pays the per-cycle search on a load-growing index.
    assert one[-1] > one[0]
    # Stability: two-tier varies far less than one-tier.
    assert relative_spread(two) < relative_spread(one)


def test_fig11b_tuning_vs_p(benchmark, context, record_figure):
    figure = benchmark.pedantic(
        lambda: figures.fig11b(context), rounds=1, iterations=1
    )
    record_figure(figure)
    one, two = _series(figure)
    assert_strictly_cheaper(two, one)
    assert one[-1] > one[0]  # wider queries -> bigger walks, every cycle
    assert relative_spread(two) < relative_spread(one)


def test_fig11c_tuning_vs_dq(benchmark, context, record_figure):
    figure = benchmark.pedantic(
        lambda: figures.fig11c(context), rounds=1, iterations=1
    )
    record_figure(figure)
    one, two = _series(figure)
    assert_strictly_cheaper(two, one)
    # D_Q moves both series little; two-tier must stay the stabler one
    # (or both are already essentially flat).
    assert relative_spread(two) < max(relative_spread(one), 0.15)
