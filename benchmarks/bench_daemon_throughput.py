"""Live daemon throughput: queries/sec and cycles/sec at fixed bandwidth.

The daemon's wire path adds real work on top of the simulator -- frame
encoding, CRC trailers, TCP fan-out, the asyncio scheduler -- so this
bench pins what a single daemon process sustains end to end: M
concurrent :class:`~repro.net.AsyncTwoTierClient` sessions submit,
tune, decode every cycle (signature-verified) and ack their deliveries,
all inside one event loop.

Three regimes are recorded:

* **unpaced** -- no token bucket: the number is pure protocol + codec
  throughput (queries/sec, cycles/sec, streamed MB/sec of wall time);
* **unpaced+telemetry** -- the same workload with the whole telemetry
  plane armed (live /metrics registry + exporter endpoint, debug-level
  event log, flight recorder, every client wire-tracing), which gates
  the telemetry overhead;
* **paced** -- ``bandwidth`` bytes/sec through the token bucket with the
  real monotonic clock: the stream must track the configured channel
  rate, which gates that pacing neither stalls (deadlock) nor runs away
  (no pacing at all).

Gates: every client satisfied with signature-verified cycles in every
regime; the paced run's effective on-air rate lands within 40% of the
configured bandwidth (debt-model slack on short runs); and telemetry-on
queries/sec stays within ``TELEMETRY_OVERHEAD_BUDGET`` of plain.  The
two unpaced variants run as interleaved pairs (after one discarded
warm-up), best against best, because shared-runner machine drift
between rounds dwarfs the overhead budget under test; pairing continues
-- ``MIN_PAIRS`` up to ``MAX_PAIRS`` -- until the ratio clears the
budget, so one noisy epoch cannot fail the gate while a genuine
regression still runs out of chances.
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import RESULTS_DIR

from repro.broadcast.server import DocumentStore
from repro.experiments.report import format_table
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.obs.telemetry import EventLog, FlightRecorder, TelemetryConfig
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation, build_collection

#: Sized so one unpaced run lasts ~2s: short runs (a few hundred ms) see
#: +-20% machine noise on shared runners, which would drown the
#: telemetry-overhead gate; at this scale per-run noise is a few percent.
CONFIG = small_setup(document_count=60, n_q=48, arrival_cycles=2)
#: On-air bytes/sec of the paced regime.  Far below what the unpaced
#: daemon sustains (~165 KB/sec measured locally at this client count,
#: >3x this rate), so the token bucket stays the binding constraint even
#: on a slower runner, the run lasts several seconds, and the
#: rate-tracking gate can tell paced from unpaced despite burst slack.
PACED_BANDWIDTH = 50_000.0
#: Interleaved unpaced pairs (plain, telemetry); each side keeps its
#: best queries/sec, so shared-machine drift cancels out of the ratio.
#: The loop stops early once the ratio clears the budget (healthy runs
#: usually need the minimum), and keeps pairing up to the cap when the
#: first pairs land in a noisy epoch.
MIN_PAIRS = 2
MAX_PAIRS = 6
#: The telemetry plane may cost at most this fraction of unpaced
#: queries/sec (telemetry >= (1 - budget) * plain).  The plane's cost
#: is *absolute* (per-frame counters, per-query traces, personalised
#: trailers), so when the hot-path rewrite cut the plain path ~9x the
#: same absolute cost became a much larger fraction -- the budget is
#: scaled to match, and the absolute floor below keeps the plane
#: honest: telemetry-on throughput must clear the same 5x speedup over
#: its own pre-rewrite figure.
TELEMETRY_OVERHEAD_BUDGET = 0.40
#: Queries/sec of the pre-rewrite daemon on this workload (the
#: committed ``results/daemon_throughput.json`` before the hot-path
#: rewrite).  The flattened kernels + share-once downlink must clear at
#: least 5x these figures.
BASELINE_UNPACED_QPS = 38.17
BASELINE_TELEMETRY_QPS = 39.06
SPEEDUP_FLOOR = 5.0


def _plans(documents):
    """A simulator arrival schedule, so the daemon serves the exact
    workload the model would."""
    sim = Simulation(CONFIG, documents=documents)
    sim.run()
    return [(s.plan.arrival_time, str(s.plan.query)) for s in sim.sessions]


async def _drive(store, plans, bandwidth, telemetry=None, trace=False):
    daemon = BroadcastDaemon(
        store,
        CONFIG,
        DaemonConfig(
            # port=0: always an OS-assigned ephemeral port, so parallel
            # CI jobs and local runs can never collide on a fixed one.
            port=0,
            autostart=False,
            bandwidth=bandwidth,
            telemetry=telemetry,
        ),
    )
    await daemon.start()
    assert daemon.port, "daemon must report its ephemeral bound port"
    clients = [
        AsyncTwoTierClient(
            query, port=daemon.port, arrival_time=arrival, trace=trace
        )
        for arrival, query in plans
    ]
    for client in clients:
        await client.connect()
        await client.tune()
    for client in clients:
        await client.submit()
    started = time.perf_counter()
    daemon.start_broadcast()
    reports = await asyncio.gather(*(c.run_session() for c in clients))
    elapsed = time.perf_counter() - started
    for client in clients:
        await client.close()
    daemon.request_stop()
    await daemon.wait_done()
    return reports, daemon, elapsed


def _full_telemetry() -> TelemetryConfig:
    """The whole plane armed: registry + HTTP exporter, debug events
    into the void, flight ring buffers filling."""
    return TelemetryConfig(
        metrics_port=0,
        events=EventLog(sink=None, level="debug"),
        flight=FlightRecorder(),
    )


def _unpaced_round(store, plans, with_telemetry):
    """One unpaced round; a fresh TelemetryConfig each time so ring
    buffers and registries never carry over between rounds."""
    telemetry = _full_telemetry() if with_telemetry else None
    run = asyncio.run(
        _drive(
            store,
            plans,
            bandwidth=None,
            telemetry=telemetry,
            trace=with_telemetry,
        )
    )
    return _regime_stats(*run)


def _measure():
    documents = build_collection(CONFIG)
    store = DocumentStore(documents, CONFIG.size_model)
    plans = _plans(documents)
    # Machine speed drifts by tens of percent across successive rounds
    # (shared-runner CPU scaling), far above the telemetry budget under
    # test.  Run the two variants as interleaved pairs -- after one
    # discarded warm-up -- so the drift lands on both sides alike, and
    # compare best against best.
    _unpaced_round(store, plans, with_telemetry=False)  # warm-up, discarded
    plain = None
    telemetry = None
    pairs = 0
    while pairs < MAX_PAIRS:
        for with_telemetry in (False, True):
            s = _unpaced_round(store, plans, with_telemetry)
            best = telemetry if with_telemetry else plain
            if best is None or s["queries_per_sec"] > best["queries_per_sec"]:
                if with_telemetry:
                    telemetry = s
                else:
                    plain = s
        pairs += 1
        ratio = (
            telemetry["queries_per_sec"] / plain["queries_per_sec"]
        )
        if pairs >= MIN_PAIRS and ratio >= 1 - TELEMETRY_OVERHEAD_BUDGET:
            break
    stats = {
        "unpaced": plain,
        "unpaced_telemetry": telemetry,
        "unpaced_pairs": pairs,
        "paced": _regime_stats(
            *asyncio.run(_drive(store, plans, bandwidth=PACED_BANDWIDTH))
        ),
    }
    return plans, stats


def _regime_stats(reports, daemon, elapsed):
    on_air = daemon.server.clock  # byte-time = total on-air bytes streamed
    return {
        "clients": len(reports),
        "satisfied": sum(1 for r in reports if r.satisfied),
        "cycles": daemon.cycles_streamed,
        "frames": daemon.frames_sent,
        "on_air_bytes": on_air,
        "streamed_bytes": daemon.bytes_streamed,
        "elapsed_sec": elapsed,
        "queries_per_sec": len(reports) / elapsed,
        "cycles_per_sec": daemon.cycles_streamed / elapsed,
        "on_air_bytes_per_sec": on_air / elapsed,
    }


def test_daemon_throughput(benchmark):
    plans, stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    overhead = 1.0 - (
        stats["unpaced_telemetry"]["queries_per_sec"]
        / stats["unpaced"]["queries_per_sec"]
    )
    stats["telemetry_overhead_fraction"] = overhead

    rows = []
    for regime in ("unpaced", "unpaced_telemetry", "paced"):
        s = stats[regime]
        rows += [
            (f"{regime}: queries/sec", s["queries_per_sec"]),
            (f"{regime}: cycles/sec", s["cycles_per_sec"]),
            (f"{regime}: on-air MB/sec", s["on_air_bytes_per_sec"] / 1e6),
            (f"{regime}: cycles streamed", s["cycles"]),
        ]
    rows.append(("telemetry overhead (qps)", f"{overhead:+.1%}"))
    text = format_table(
        "Live daemon throughput (in-process TCP, signature-verified clients)",
        ("metric", "value"),
        rows,
        note=(
            f"{CONFIG.document_count} docs, {len(plans)} scripted clients, "
            f"capacity {CONFIG.cycle_data_capacity} B; paced regime at "
            f"{PACED_BANDWIDTH / 1e3:.0f} KB/sec on-air; unpaced rows are "
            f"best of {stats['unpaced_pairs']} interleaved pairs; telemetry "
            "= exporter + debug events + flight recorder + traced clients"
        ),
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "daemon_throughput.txt").write_text(text + "\n", encoding="utf-8")
    (RESULTS_DIR / "daemon_throughput.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # Gates: full satisfaction in every regime ...
    for regime in ("unpaced", "unpaced_telemetry", "paced"):
        s = stats[regime]
        assert s["satisfied"] == s["clients"], f"{regime}: unsatisfied clients"
        assert s["cycles"] >= 1
    # ... the telemetry plane must stay within its overhead budget ...
    assert overhead <= TELEMETRY_OVERHEAD_BUDGET, (
        f"telemetry costs {overhead:.1%} of unpaced queries/sec "
        f"(budget {TELEMETRY_OVERHEAD_BUDGET:.0%})"
    )
    # ... unpaced must outrun the paced channel rate (else pacing is free,
    # i.e. the daemon itself is the bottleneck at this bandwidth) ...
    assert stats["unpaced"]["on_air_bytes_per_sec"] > PACED_BANDWIDTH
    # ... the hot-path rewrite must hold: flattened NFA/CI kernels plus
    # the share-once downlink sustain at least 5x the pre-rewrite
    # daemon's queries/sec on this same workload ...
    assert (
        stats["unpaced"]["queries_per_sec"]
        >= SPEEDUP_FLOOR * BASELINE_UNPACED_QPS
    ), (
        f"unpaced {stats['unpaced']['queries_per_sec']:.1f} q/s is below "
        f"{SPEEDUP_FLOOR:.0f}x the {BASELINE_UNPACED_QPS} q/s baseline"
    )
    # ... with the full telemetry plane armed the same floor holds
    # against the telemetry regime's own pre-rewrite figure, so the
    # relaxed relative budget above cannot hide an absolute regression
    # in the plane itself ...
    assert (
        stats["unpaced_telemetry"]["queries_per_sec"]
        >= SPEEDUP_FLOOR * BASELINE_TELEMETRY_QPS
    ), (
        f"telemetry-on {stats['unpaced_telemetry']['queries_per_sec']:.1f} "
        f"q/s is below {SPEEDUP_FLOOR:.0f}x the {BASELINE_TELEMETRY_QPS} "
        "q/s baseline"
    )
    # ... and the paced stream tracks the configured bandwidth: no stall,
    # no runaway.  The token bucket starts empty (no free initial burst),
    # so the bound covers cycle 1 as tightly as the rest of the run: the
    # long-run rate can only undershoot the configured bandwidth (build
    # time between cycles), never materially overshoot it.
    paced_rate = stats["paced"]["on_air_bytes_per_sec"]
    assert 0.6 * PACED_BANDWIDTH <= paced_rate <= 1.05 * PACED_BANDWIDTH, (
        f"paced on-air rate {paced_rate:,.0f} B/s vs configured "
        f"{PACED_BANDWIDTH:,.0f} B/s"
    )
