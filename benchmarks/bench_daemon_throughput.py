"""Live daemon throughput: queries/sec and cycles/sec at fixed bandwidth.

The daemon's wire path adds real work on top of the simulator -- frame
encoding, CRC trailers, TCP fan-out, the asyncio scheduler -- so this
bench pins what a single daemon process sustains end to end: M
concurrent :class:`~repro.net.AsyncTwoTierClient` sessions submit,
tune, decode every cycle (signature-verified) and ack their deliveries,
all inside one event loop.

Two regimes are recorded:

* **unpaced** -- no token bucket: the number is pure protocol + codec
  throughput (queries/sec, cycles/sec, streamed MB/sec of wall time);
* **paced** -- ``bandwidth`` bytes/sec through the token bucket with the
  real monotonic clock: the stream must track the configured channel
  rate, which gates that pacing neither stalls (deadlock) nor runs away
  (no pacing at all).

Gates: every client satisfied with signature-verified cycles in both
regimes, and the paced run's effective on-air rate lands within 40% of
the configured bandwidth (debt-model slack on short runs).
"""

from __future__ import annotations

import asyncio
import json
import time

from conftest import RESULTS_DIR

from repro.broadcast.server import DocumentStore
from repro.experiments.report import format_table
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation, build_collection

CONFIG = small_setup(document_count=60, n_q=12, arrival_cycles=2)
#: On-air bytes/sec of the paced regime.  Far below what the unpaced
#: daemon sustains (~1 MB/sec measured locally), so the token bucket is
#: the binding constraint, the run lasts several seconds, and the
#: rate-tracking gate can tell paced from unpaced despite burst slack.
PACED_BANDWIDTH = 100_000.0


def _plans(documents):
    """A simulator arrival schedule, so the daemon serves the exact
    workload the model would."""
    sim = Simulation(CONFIG, documents=documents)
    sim.run()
    return [(s.plan.arrival_time, str(s.plan.query)) for s in sim.sessions]


async def _drive(store, plans, bandwidth):
    daemon = BroadcastDaemon(
        store, CONFIG, DaemonConfig(autostart=False, bandwidth=bandwidth)
    )
    await daemon.start()
    clients = [
        AsyncTwoTierClient(query, port=daemon.port, arrival_time=arrival)
        for arrival, query in plans
    ]
    for client in clients:
        await client.connect()
        await client.tune()
    for client in clients:
        await client.submit()
    started = time.perf_counter()
    daemon.start_broadcast()
    reports = await asyncio.gather(*(c.run_session() for c in clients))
    elapsed = time.perf_counter() - started
    for client in clients:
        await client.close()
    daemon.request_stop()
    await daemon.wait_done()
    return reports, daemon, elapsed


def _measure():
    documents = build_collection(CONFIG)
    store = DocumentStore(documents, CONFIG.size_model)
    plans = _plans(documents)
    unpaced = asyncio.run(_drive(store, plans, bandwidth=None))
    paced = asyncio.run(_drive(store, plans, bandwidth=PACED_BANDWIDTH))
    return plans, unpaced, paced


def _regime_stats(reports, daemon, elapsed):
    on_air = daemon.server.clock  # byte-time = total on-air bytes streamed
    return {
        "clients": len(reports),
        "satisfied": sum(1 for r in reports if r.satisfied),
        "cycles": daemon.cycles_streamed,
        "frames": daemon.frames_sent,
        "on_air_bytes": on_air,
        "streamed_bytes": daemon.bytes_streamed,
        "elapsed_sec": elapsed,
        "queries_per_sec": len(reports) / elapsed,
        "cycles_per_sec": daemon.cycles_streamed / elapsed,
        "on_air_bytes_per_sec": on_air / elapsed,
    }


def test_daemon_throughput(benchmark):
    plans, unpaced, paced = benchmark.pedantic(_measure, rounds=1, iterations=1)
    stats = {
        "unpaced": _regime_stats(*unpaced),
        "paced": _regime_stats(*paced),
    }

    rows = []
    for regime, s in stats.items():
        rows += [
            (f"{regime}: queries/sec", s["queries_per_sec"]),
            (f"{regime}: cycles/sec", s["cycles_per_sec"]),
            (f"{regime}: on-air MB/sec", s["on_air_bytes_per_sec"] / 1e6),
            (f"{regime}: cycles streamed", s["cycles"]),
        ]
    text = format_table(
        "Live daemon throughput (in-process TCP, signature-verified clients)",
        ("metric", "value"),
        rows,
        note=(
            f"{CONFIG.document_count} docs, {len(plans)} scripted clients, "
            f"capacity {CONFIG.cycle_data_capacity} B; paced regime at "
            f"{PACED_BANDWIDTH / 1e6:.1f} MB/sec on-air"
        ),
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "daemon_throughput.txt").write_text(text + "\n", encoding="utf-8")
    (RESULTS_DIR / "daemon_throughput.json").write_text(
        json.dumps(stats, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    # Gates: full satisfaction in both regimes ...
    for regime, s in stats.items():
        assert s["satisfied"] == s["clients"], f"{regime}: unsatisfied clients"
        assert s["cycles"] >= 1
    # ... unpaced must outrun the paced channel rate (else pacing is free,
    # i.e. the daemon itself is the bottleneck at this bandwidth) ...
    assert stats["unpaced"]["on_air_bytes_per_sec"] > PACED_BANDWIDTH
    # ... and the paced stream tracks the configured bandwidth: no stall,
    # no runaway.  The token bucket's initial burst forgives one second's
    # bytes, so short runs land above the nominal rate; bound both sides.
    paced_rate = stats["paced"]["on_air_bytes_per_sec"]
    burst_slack = PACED_BANDWIDTH  # one burst over the whole run
    upper = PACED_BANDWIDTH + burst_slack / stats["paced"]["elapsed_sec"]
    assert 0.6 * PACED_BANDWIDTH <= paced_rate <= 1.4 * upper, (
        f"paced on-air rate {paced_rate:,.0f} B/s vs configured "
        f"{PACED_BANDWIDTH:,.0f} B/s"
    )
