"""Adaptive control plane vs the static (K, policy) sweep.

The tentpole gate of the adaptive control plane: over a matrix of
shifting-demand scenarios (flash crowd, diurnal load, popularity
drift), one adaptive run -- starting from the single-channel default
and re-planning every cycle -- must match or beat the **best** static
(K, policy) configuration of a full sweep on mean access time in every
scenario, and strictly beat it in at least two.

The regime is the one where re-planning has something to exploit: a
small per-channel cycle budget (6 kB) against a steady arrival rate
that already demands more than one channel, with bursts that demand
four.  No fixed K is right across the phases -- a wide configuration
pays single-tuner conflict deferrals in the quiet phases, a narrow one
drowns in the bursts -- and no fixed allocation policy wins every
demand mix.  The controller closes the loop from the observed backlog:
proportional K growth under load, idle-driven shrink, and the
access-cost policy-regret estimator (which prices conflicts, not raw
packing).

Everything is deterministic (seeded workload, seeded controller, no
wall clock), so the gate is exact: no epsilons, no reruns.

``REPRO_BENCH_ADAPTIVE_GRID=small`` downsamples the static sweep to
the known per-scenario winner plus the single-channel baseline (the
nightly CI matrix); the default runs the full 7-point (K, policy)
grid.
"""

from __future__ import annotations

import json
import os

from conftest import RESULTS_DIR

from repro.control import ControlConfig
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation
from repro.xmlkit.generator import GeneratorConfig, generate_collection, dblp_like_dtd

DOCS = 200
#: Single-record DBLP-like documents (one bibliography record each), so
#: structure queries are selective and their result sets diverse -- the
#: property that makes channel allocation matter at all.
GEN = GeneratorConfig(seed=7, max_repeat=1, repeat_prob=0.0, optional_prob=0.3)

BASE = dict(
    dtd="dblp",
    wildcard_prob=0.1,
    document_count=DOCS,
    n_q=12,
    cycle_data_capacity=6_000,
    arrival_cycles=9,
    max_cycles=4_000,
    scenario_intensity=6.0,
    scenario_period=6,
)

SCENARIOS = ("flash", "diurnal", "drift")

FULL_GRID = [(1, "round-robin")] + [
    (k, policy)
    for k in (2, 4)
    for policy in ("round-robin", "balanced", "demand")
]
#: Nightly downsample: the single-channel baseline and the
#: configuration the full sweep crowns in every scenario.
SMALL_GRID = [(1, "round-robin"), (4, "demand")]

ADAPTIVE_CONTROL = ControlConfig(k_min=1, k_max=4, cooldown_cycles=1)


def static_grid():
    if os.environ.get("REPRO_BENCH_ADAPTIVE_GRID") == "small":
        return SMALL_GRID
    return FULL_GRID


def _run(documents, scenario, **overrides):
    config = small_setup(scenario=scenario, **BASE, **overrides)
    sim = Simulation(config, documents=documents)
    result = sim.run()
    assert result.completed, f"run truncated: {scenario} {overrides}"
    return sim, result.mean_access_bytes("two-tier-multi")


def _scenario_matrix():
    documents = generate_collection(dblp_like_dtd(), DOCS, config=GEN)
    rows = []
    for scenario in SCENARIOS:
        statics = {}
        for k, policy in static_grid():
            _sim, access = _run(
                documents,
                scenario,
                num_data_channels=k,
                channel_allocation=policy,
            )
            statics[f"K{k}/{policy}"] = access
        sim, adaptive_access = _run(
            documents,
            scenario,
            num_data_channels=1,
            channel_allocation="demand",
            adaptive=True,
            control=ADAPTIVE_CONTROL,
        )
        controller = sim.controller
        rows.append(
            {
                "scenario": scenario,
                "adaptive": adaptive_access,
                "static": statics,
                "best_static": min(statics, key=statics.get),
                "k_changes": controller.k_changes,
                "policy_switches": controller.policy_switches,
                "plan_changes": controller.plan_changes,
                "k_trajectory": [p.num_channels for p in controller.plans],
            }
        )
    return rows


def test_adaptive_beats_static_sweep(benchmark):
    rows = benchmark.pedantic(_scenario_matrix, rounds=1, iterations=1)

    lines = ["scenario     adaptive    best-static (config)        margin"]
    strict_wins = 0
    for row in rows:
        best = row["static"][row["best_static"]]
        margin = (best - row["adaptive"]) / best * 100
        lines.append(
            f"{row['scenario']:<10} {row['adaptive']:>10.1f} "
            f"{best:>10.1f} ({row['best_static']:<14}) {margin:+6.2f}%"
        )
        # The gate: never worse than the best static configuration...
        assert row["adaptive"] <= best, (
            f"{row['scenario']}: adaptive {row['adaptive']:.1f} worse than "
            f"best static {row['best_static']} at {best:.1f}"
        )
        if row["adaptive"] < best:
            strict_wins += 1
        # ...and the win is adaptation, not a lucky static start: the
        # controller actually moved during every scenario.
        assert row["k_changes"] >= 1, f"{row['scenario']}: controller never moved K"
    # ...and strictly better where the demand actually shifts.
    assert strict_wins >= 2, f"only {strict_wins} strict wins over the sweep"

    table = "\n".join(lines)
    print("\n" + table)
    (RESULTS_DIR / "adaptive_scenarios.txt").write_text(table + "\n")
    (RESULTS_DIR / "adaptive_scenarios.json").write_text(
        json.dumps(rows, indent=2, sort_keys=True) + "\n"
    )
