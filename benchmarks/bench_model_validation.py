"""Equation (1) at scale: analytical model vs discrete-event simulation.

The paper analyses the two-tier protocol as ``TT = L_I + n * L_O +
download``.  This bench runs the closed-form model of
:mod:`repro.analysis` against full simulations across the N_Q sweep and
asserts the predictions stay within a tight band of the measurements --
simulator and analysis validating each other.
"""

from __future__ import annotations

from conftest import RESULTS_DIR

from repro.analysis.model import validate_against_simulation
from repro.experiments.report import format_table


def _validation_rows(context):
    rows = []
    for n_q in context.scale.n_q_sweep:
        config = context.base_config(n_q=n_q)
        result = context.run_simulation(config)
        validation = validate_against_simulation(result, config.cycle_data_capacity)
        rows.append(
            (
                n_q,
                validation.predicted.cycles,
                validation.measured_cycles,
                validation.predicted.two_tier_lookup,
                validation.measured_two_tier,
                validation.max_error,
            )
        )
    return rows


def test_model_validation(benchmark, context):
    rows = benchmark.pedantic(
        lambda: _validation_rows(context), rounds=1, iterations=1
    )
    text = format_table(
        "Analytical model vs simulation (Equation 1 at scale)",
        (
            "N_Q",
            "pred cycles",
            "meas cycles",
            "pred 2-tier B",
            "meas 2-tier B",
            "max rel err",
        ),
        rows,
        note="Model: n = ceil(requested air bytes / capacity); TT per Eq. (1).",
    )
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "model_validation.txt").write_text(text + "\n", encoding="utf-8")

    # The closed forms must track the simulator at every load level.
    assert all(row[5] < 0.35 for row in rows), rows
    # And the mean error should be distinctly tighter.
    mean_error = sum(row[5] for row in rows) / len(rows)
    assert mean_error < 0.25
