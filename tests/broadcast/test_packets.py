"""Unit tests for packet and cycle-layout primitives."""

from __future__ import annotations

import pytest

from repro.broadcast.packets import CycleLayout, PacketKind, Segment


def two_segment_layout() -> CycleLayout:
    return CycleLayout(
        (
            Segment(PacketKind.FIRST_TIER_INDEX, 0, 256),
            Segment(PacketKind.SECOND_TIER_INDEX, 256, 128),
            Segment(PacketKind.DATA, 384, 512),
        ),
        packet_bytes=128,
    )


class TestSegment:
    def test_contains(self):
        segment = Segment(PacketKind.DATA, 100, 50)
        assert segment.contains(100)
        assert segment.contains(149)
        assert not segment.contains(150)
        assert not segment.contains(99)

    def test_end(self):
        assert Segment(PacketKind.DATA, 100, 50).end == 150


class TestCycleLayout:
    def test_totals(self):
        layout = two_segment_layout()
        assert layout.total_bytes == 896
        assert layout.total_packets == 7

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            CycleLayout(
                (
                    Segment(PacketKind.DATA, 0, 128),
                    Segment(PacketKind.DATA, 256, 128),  # hole at 128
                ),
                packet_bytes=128,
            )

    def test_unaligned_rejected(self):
        with pytest.raises(ValueError):
            CycleLayout((Segment(PacketKind.DATA, 0, 100),), packet_bytes=128)

    def test_segment_lookup(self):
        layout = two_segment_layout()
        assert layout.segment(PacketKind.DATA).start == 384
        assert layout.segment(PacketKind.ONE_TIER_INDEX) is None

    def test_kind_at(self):
        layout = two_segment_layout()
        assert layout.kind_at(0) is PacketKind.FIRST_TIER_INDEX
        assert layout.kind_at(300) is PacketKind.SECOND_TIER_INDEX
        assert layout.kind_at(895) is PacketKind.DATA
        with pytest.raises(ValueError):
            layout.kind_at(896)

    def test_empty_layout(self):
        layout = CycleLayout((), packet_bytes=128)
        assert layout.total_bytes == 0
        assert layout.total_packets == 0
