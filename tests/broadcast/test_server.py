"""Unit tests for the broadcast server and document store."""

from __future__ import annotations

import pytest

from repro.broadcast.program import IndexScheme
from repro.broadcast.scheduling import FCFSScheduler
from repro.broadcast.server import BroadcastServer, DocumentStore, PendingQuery
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.evaluator import matching_documents
from repro.xpath.parser import parse_query


def paper_store() -> DocumentStore:
    from tests.xpath.test_evaluator import paper_documents

    return DocumentStore(paper_documents())


class TestDocumentStore:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DocumentStore([])

    def test_duplicate_ids_rejected(self):
        doc = XMLDocument(0, build_element("a"))
        clone = XMLDocument(0, build_element("a"))
        with pytest.raises(ValueError):
            DocumentStore([doc, clone])

    def test_air_bytes_packet_aligned(self):
        store = paper_store()
        for doc in store.documents:
            air = store.air_bytes(doc.doc_id)
            assert air % store.size_model.packet_bytes == 0
            assert air >= doc.size_bytes

    def test_guides_cached_per_doc(self):
        store = paper_store()
        assert set(store.guides) == {doc.doc_id for doc in store.documents}

    def test_subset(self):
        store = paper_store()
        subset = store.subset({1, 3})
        assert [doc.doc_id for doc in subset] == [1, 3]

    def test_total_data_bytes(self):
        store = paper_store()
        assert store.total_data_bytes() == sum(
            doc.size_bytes for doc in store.documents
        )


class TestResolve:
    def test_matches_evaluator(self, nitf_store, nitf_queries):
        server = BroadcastServer(nitf_store)
        for query in nitf_queries[:15]:
            expected = matching_documents(query, nitf_store.documents)
            assert server.resolve(query) == expected, str(query)

    def test_cached_by_string(self):
        server = BroadcastServer(paper_store())
        first = server.resolve(parse_query("/a/b"))
        second = server.resolve(parse_query("/a/b"))
        assert first is second  # same frozenset object -> cache hit

    def test_paper_queries(self):
        server = BroadcastServer(paper_store())
        assert server.resolve(parse_query("/a/b/a")) == {0, 1}
        assert server.resolve(parse_query("/a//c")) == {1, 2, 3, 4}
        assert server.resolve(parse_query("/a/c/*")) == {1, 3, 4}


class TestResolveBatch:
    def test_matches_single_resolution(self, nitf_store, nitf_queries):
        batch_server = BroadcastServer(nitf_store)
        single_server = BroadcastServer(nitf_store)
        batch = batch_server.resolve_batch(nitf_queries[:15])
        singles = [single_server.resolve(q) for q in nitf_queries[:15]]
        assert batch == singles

    def test_duplicate_queries_share_one_result(self):
        server = BroadcastServer(paper_store())
        a, b = server.resolve_batch([parse_query("/a/b"), parse_query("/a/b")])
        assert a is b  # one resolution, one cached frozenset

    def test_mixed_hits_and_misses(self):
        server = BroadcastServer(paper_store())
        warm = server.resolve(parse_query("/a/b"))
        results = server.resolve_batch(
            [parse_query("/a//c"), parse_query("/a/b"), parse_query("/a/c/*")]
        )
        assert results[0] == {1, 2, 3, 4}
        assert results[1] is warm  # cache hit kept its position
        assert results[2] == {1, 3, 4}

    def test_empty_batch(self):
        assert BroadcastServer(paper_store()).resolve_batch([]) == []

    def test_predicate_query_rejected(self):
        server = BroadcastServer(paper_store())
        with pytest.raises(ValueError, match="structural"):
            server.resolve_batch([parse_query("/a/b[c]")])


class TestSubmit:
    def test_pending_created(self):
        server = BroadcastServer(paper_store())
        pending = server.submit(parse_query("/a/b"), arrival_time=10)
        assert pending.result_doc_ids == {0, 1, 2, 4}
        assert pending.remaining_doc_ids == {0, 1, 2, 4}
        assert not pending.is_satisfied

    def test_empty_result_rejected(self):
        server = BroadcastServer(paper_store())
        with pytest.raises(ValueError):
            server.submit(parse_query("/nothing/here"), arrival_time=0)

    def test_query_ids_increment(self):
        server = BroadcastServer(paper_store())
        first = server.submit(parse_query("/a/b"), 0)
        second = server.submit(parse_query("/a//c"), 0)
        assert second.query_id == first.query_id + 1

    def test_batch_admission(self):
        server = BroadcastServer(paper_store())
        admitted = server.submit_batch(
            [parse_query("/a/b"), parse_query("/a//c")], arrival_time=5
        )
        assert [p.query_id for p in admitted] == [0, 1]
        assert all(p.arrival_time == 5 for p in admitted)
        assert server.pending == admitted

    def test_batch_admission_is_atomic(self):
        """One empty-result query rejects the whole batch before any
        admission happens."""
        server = BroadcastServer(paper_store())
        with pytest.raises(ValueError, match="empty result set"):
            server.submit_batch(
                [parse_query("/a/b"), parse_query("/nothing/here")], arrival_time=0
            )
        assert server.pending == []
        assert len(server.demand) == 0


class TestBuildCycle:
    def test_idle_server_returns_none(self):
        server = BroadcastServer(paper_store())
        assert server.build_cycle() is None

    def test_future_arrivals_not_served(self):
        server = BroadcastServer(paper_store())
        server.submit(parse_query("/a/b"), arrival_time=10_000)
        assert server.build_cycle(now=0) is None

    def test_single_query_served_and_satisfied(self):
        server = BroadcastServer(paper_store(), cycle_data_capacity=1_000_000)
        pending = server.submit(parse_query("/a/b/a"), arrival_time=0)
        cycle = server.build_cycle()
        assert cycle is not None
        assert set(cycle.doc_ids) == {0, 1}
        assert pending.is_satisfied
        assert pending.satisfied_cycle == 0
        assert server.pending == []
        assert server.completed == [pending]

    def test_capacity_spreads_over_cycles(self):
        store = paper_store()
        # Capacity of one packet-aligned document per cycle.
        capacity = store.air_bytes(0)
        server = BroadcastServer(store, cycle_data_capacity=capacity)
        pending = server.submit(parse_query("/a//c"), arrival_time=0)
        cycles = 0
        while not pending.is_satisfied:
            assert server.build_cycle() is not None
            cycles += 1
            assert cycles < 20
        assert cycles > 1
        assert pending.cycles_listened == cycles

    def test_clock_advances_past_cycle(self):
        server = BroadcastServer(paper_store())
        server.submit(parse_query("/a/b"), 0)
        cycle = server.build_cycle()
        assert server.clock == cycle.end_time
        assert cycle.start_time == 0

    def test_pci_covers_only_requested_docs(self):
        server = BroadcastServer(paper_store())
        server.submit(parse_query("/a/b/a"), 0)  # d1, d2
        cycle = server.build_cycle()
        assert set(cycle.pci.annotated_doc_ids()) <= {0, 1}

    def test_lookup_on_cycle_matches_resolution(self):
        server = BroadcastServer(paper_store())
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        assert set(cycle.lookup(query).doc_ids) == {1, 2, 3, 4}

    def test_records_written(self):
        server = BroadcastServer(paper_store())
        server.submit(parse_query("/a/b"), 0)
        server.build_cycle()
        assert len(server.records) == 1
        record = server.records[0]
        assert record.pending_count == 1
        assert record.scheduled_docs > 0
        assert record.requested_docs == 4  # /a/b -> d1, d2, d3, d5
        assert record.pruning.bytes_after <= record.pruning.bytes_before

    def test_one_tier_scheme(self):
        server = BroadcastServer(
            paper_store(), scheme=IndexScheme.ONE_TIER, scheduler=FCFSScheduler()
        )
        server.submit(parse_query("/a/b"), 0)
        cycle = server.build_cycle()
        assert cycle.scheme is IndexScheme.ONE_TIER

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BroadcastServer(paper_store(), cycle_data_capacity=0)

    def test_multiple_queries_share_documents(self):
        server = BroadcastServer(paper_store(), cycle_data_capacity=1_000_000)
        q1 = server.submit(parse_query("/a/b/a"), 0)  # {0, 1}
        q2 = server.submit(parse_query("/a/c/a"), 0)  # {3, 4}
        cycle = server.build_cycle()
        assert set(cycle.doc_ids) == {0, 1, 3, 4}
        assert q1.is_satisfied and q2.is_satisfied

    def test_late_arrival_served_next_cycle(self):
        store = paper_store()
        server = BroadcastServer(store, cycle_data_capacity=1_000_000)
        server.submit(parse_query("/a/b/a"), 0)
        first = server.build_cycle()
        late = server.submit(parse_query("/a/c/a"), arrival_time=first.end_time - 1)
        second = server.build_cycle()
        assert second is not None
        assert set(second.doc_ids) == {3, 4}
        assert late.is_satisfied
