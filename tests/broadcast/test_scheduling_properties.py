"""Property tests shared by every scheduler implementation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.broadcast.scheduling import make_scheduler, scheduler_names
from repro.broadcast.server import DocumentStore, PendingQuery
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.parser import parse_query


def store_of(sizes):
    docs = [
        XMLDocument(i, build_element("a", build_element("b", text="x" * size)))
        for i, size in enumerate(sizes)
    ]
    return DocumentStore(docs)


@st.composite
def pending_sets(draw):
    doc_count = draw(st.integers(2, 8))
    sizes = draw(
        st.lists(st.integers(1, 600), min_size=doc_count, max_size=doc_count)
    )
    store = store_of(sizes)
    query_count = draw(st.integers(1, 5))
    pending = []
    for query_id in range(query_count):
        remaining = draw(
            st.sets(st.integers(0, doc_count - 1), min_size=1, max_size=doc_count)
        )
        pending.append(
            PendingQuery(
                query_id=query_id,
                query=parse_query("/a/b"),
                arrival_time=draw(st.integers(0, 100)),
                result_doc_ids=frozenset(remaining),
            )
        )
    return store, pending


@pytest.mark.parametrize("name", scheduler_names())
class TestSchedulerContracts:
    @given(data=st.data())
    def test_rank_returns_exactly_the_demanded_docs(self, name, data):
        store, pending = data.draw(pending_sets())
        scheduler = make_scheduler(name, store)
        ranked = scheduler.rank(pending, now=200)
        demanded = set()
        for query in pending:
            demanded |= query.remaining_doc_ids
        assert set(ranked) == demanded
        assert len(ranked) == len(set(ranked))  # no duplicates

    @given(data=st.data())
    def test_select_within_capacity_plus_first_doc(self, name, data):
        store, pending = data.draw(pending_sets())
        capacity = data.draw(st.integers(1, 3000))
        scheduler = make_scheduler(name, store)
        chosen = scheduler.select(pending, store, capacity, now=200)
        total = sum(store.air_bytes(d) for d in chosen)
        if len(chosen) > 1:
            assert total <= capacity + store.air_bytes(chosen[-1])
            # Stronger: removing the last pick fits the budget.
            assert total - store.air_bytes(chosen[-1]) <= capacity

    @given(data=st.data())
    def test_select_nonempty_when_demand_exists(self, name, data):
        store, pending = data.draw(pending_sets())
        scheduler = make_scheduler(name, store)
        assert scheduler.select(pending, store, 1, now=200)

    @given(data=st.data())
    def test_deterministic(self, name, data):
        store, pending = data.draw(pending_sets())
        scheduler = make_scheduler(name, store)
        again = make_scheduler(name, store)
        assert scheduler.rank(pending, now=200) == again.rank(pending, now=200)
