"""Unit tests for the incremental cycle-build caches."""

from __future__ import annotations

import pytest

from repro.broadcast.cycle_cache import CycleBuildCache, query_key_of
from repro.broadcast.program import _index_tree_form
from repro.broadcast.server import DocumentStore, build_ci_from_store
from repro.xpath.parser import parse_query


def paper_store() -> DocumentStore:
    from tests.xpath.test_evaluator import paper_documents

    return DocumentStore(paper_documents())


def ci_form(ci):
    return (ci.virtual_root, _index_tree_form(ci))


class TestConstruction:
    def test_threshold_range_validated(self):
        store = paper_store()
        with pytest.raises(ValueError):
            CycleBuildCache(store, rebuild_threshold=-0.1)
        with pytest.raises(ValueError):
            CycleBuildCache(store, rebuild_threshold=1.5)

    def test_dfa_cache_size_validated(self):
        with pytest.raises(ValueError):
            CycleBuildCache(paper_store(), dfa_cache_size=0)


class TestCILayer:
    def test_cold_build_counts_rebuild(self):
        store = paper_store()
        cache = CycleBuildCache(store)
        ci = cache.ci_for(frozenset({0, 1, 2}))
        assert cache.stats["ci_rebuilds"] == 1
        assert ci_form(ci) == ci_form(build_ci_from_store(store, {0, 1, 2}))

    def test_exact_hit_returns_same_object(self):
        cache = CycleBuildCache(paper_store())
        first = cache.ci_for(frozenset({0, 1, 2}))
        second = cache.ci_for(frozenset({0, 1, 2}))
        assert first is second
        assert cache.stats["ci_hits"] == 1

    def test_small_delta_applied_incrementally(self):
        store = paper_store()
        cache = CycleBuildCache(store)
        cache.ci_for(frozenset({0, 1, 2, 3, 4}))
        shrunk = cache.ci_for(frozenset({0, 1, 2, 3}))
        assert cache.stats["ci_incremental"] == 1
        assert cache.stats["ci_rebuilds"] == 1  # only the cold build
        assert ci_form(shrunk) == ci_form(build_ci_from_store(store, {0, 1, 2, 3}))

    def test_growing_delta_applied_incrementally(self):
        store = paper_store()
        cache = CycleBuildCache(store)
        cache.ci_for(frozenset({0, 1, 2, 3}))
        grown = cache.ci_for(frozenset({0, 1, 2, 3, 4}))
        assert cache.stats["ci_incremental"] == 1
        assert ci_form(grown) == ci_form(build_ci_from_store(store, {0, 1, 2, 3, 4}))

    def test_large_delta_triggers_rebuild(self):
        store = paper_store()
        cache = CycleBuildCache(store, rebuild_threshold=0.5)
        cache.ci_for(frozenset({0, 1, 2, 3}))
        # Delta: 1 addition + 4 removals = 5 > 0.5 * 1 -> full re-merge.
        rebuilt = cache.ci_for(frozenset({4}))
        assert cache.stats["ci_rebuilds"] == 2
        assert cache.stats["ci_incremental"] == 0
        assert ci_form(rebuilt) == ci_form(build_ci_from_store(store, {4}))

    def test_empty_request_rejected(self):
        with pytest.raises(ValueError):
            CycleBuildCache(paper_store()).ci_for(frozenset())

    def test_incremental_walk_sequence_matches_scratch(self):
        """A drain-like sequence of shrinking request sets stays equal to
        from-scratch CIs at every step."""
        store = paper_store()
        cache = CycleBuildCache(store)
        sets = [{0, 1, 2, 3, 4}, {0, 1, 2, 3}, {1, 2, 3}, {1, 2}, {2}]
        for requested in sets:
            cached = cache.ci_for(frozenset(requested))
            assert ci_form(cached) == ci_form(
                build_ci_from_store(store, requested)
            ), requested


class TestDFALayer:
    def test_hit_returns_same_dfa(self):
        cache = CycleBuildCache(paper_store())
        queries = [parse_query("/a/b")]
        key = query_key_of(queries)
        first = cache.dfa_for(key, queries)
        second = cache.dfa_for(key, queries)
        assert first is second
        assert cache.stats == {**cache.stats, "dfa_hits": 1, "dfa_misses": 1}

    def test_lru_evicts_oldest(self):
        cache = CycleBuildCache(paper_store(), dfa_cache_size=2)
        qa, qb, qc = ([parse_query(t)] for t in ("/a", "/a/b", "/a//c"))
        first = cache.dfa_for(query_key_of(qa), qa)
        cache.dfa_for(query_key_of(qb), qb)
        cache.dfa_for(query_key_of(qc), qc)  # evicts qa's entry
        again = cache.dfa_for(query_key_of(qa), qa)
        assert again is not first
        assert cache.stats["dfa_misses"] == 4

    def test_recent_use_protects_from_eviction(self):
        cache = CycleBuildCache(paper_store(), dfa_cache_size=2)
        qa, qb, qc = ([parse_query(t)] for t in ("/a", "/a/b", "/a//c"))
        first = cache.dfa_for(query_key_of(qa), qa)
        cache.dfa_for(query_key_of(qb), qb)
        cache.dfa_for(query_key_of(qa), qa)  # refresh qa
        cache.dfa_for(query_key_of(qc), qc)  # evicts qb, not qa
        assert cache.dfa_for(query_key_of(qa), qa) is first


class TestPCILayer:
    def test_reuse_when_nothing_changed(self):
        cache = CycleBuildCache(paper_store())
        requested = frozenset({0, 1, 2, 3, 4})
        queries = [parse_query("/a/b"), parse_query("/a//c")]
        ci = cache.ci_for(requested)
        first = cache.pci_for(ci, requested, queries)
        second = cache.pci_for(ci, requested, queries)
        assert first[0] is second[0] and first[1] is second[1]
        assert cache.stats["pci_hits"] == 1 and cache.stats["pci_misses"] == 1

    def test_query_order_irrelevant(self):
        cache = CycleBuildCache(paper_store())
        requested = frozenset({0, 1, 2, 3, 4})
        queries = [parse_query("/a/b"), parse_query("/a//c")]
        ci = cache.ci_for(requested)
        first = cache.pci_for(ci, requested, queries)
        second = cache.pci_for(ci, requested, list(reversed(queries)))
        assert first[0] is second[0]

    def test_requested_change_misses(self):
        cache = CycleBuildCache(paper_store())
        queries = [parse_query("/a/b")]
        full = frozenset({0, 1, 2, 3, 4})
        ci = cache.ci_for(full)
        cache.pci_for(ci, full, queries)
        smaller = frozenset({0, 1, 2, 3})
        ci2 = cache.ci_for(smaller)
        cache.pci_for(ci2, smaller, queries)
        assert cache.stats["pci_misses"] == 2
        # The DFA layer still hits: the query set did not change.
        assert cache.stats["dfa_hits"] == 1


class TestInvalidation:
    def test_collection_invalidation_drops_all_layers(self):
        cache = CycleBuildCache(paper_store())
        requested = frozenset({0, 1, 2})
        queries = [parse_query("/a/b")]
        ci = cache.ci_for(requested)
        pci = cache.pci_for(ci, requested, queries)[0]
        dfa = cache.dfa_for(query_key_of(queries), queries)
        cache.invalidate_collection()
        assert cache.ci_for(requested) is not ci
        assert cache.pci_for(cache.ci_for(requested), requested, queries)[0] is not pci
        assert cache.dfa_for(query_key_of(queries), queries) is not dfa
        assert cache.stats["ci_rebuilds"] == 2
