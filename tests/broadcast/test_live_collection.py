"""Tests for live collection changes at the store and server level."""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.parser import parse_query


def paper_store() -> DocumentStore:
    from tests.xpath.test_evaluator import paper_documents

    return DocumentStore(paper_documents())


class TestStoreMaintenance:
    def test_add_document_updates_everything(self):
        store = paper_store()
        extra = XMLDocument(10, build_element("a", build_element("b")))
        store.add_document(extra)
        assert store.document(10) is extra
        assert store.air_bytes(10) > 0
        assert 10 in store.guides
        assert 10 in store.full_guide.docs_containing(("a", "b"))

    def test_add_duplicate_rejected(self):
        store = paper_store()
        with pytest.raises(ValueError):
            store.add_document(XMLDocument(0, build_element("a")))

    def test_remove_document_updates_everything(self):
        store = paper_store()
        removed = store.remove_document(1)  # d2
        assert removed.doc_id == 1
        assert 1 not in store.by_id
        assert 1 not in store.guides
        # d2's unique path disappears from the combined guide.
        assert store.full_guide.find(("a", "c", "b")) is None

    def test_remove_matches_rebuild(self):
        store = paper_store()
        store.remove_document(1)
        rebuilt = DocumentStore(store.documents)
        ours = {
            path: frozenset(node.leaf_docs)
            for node, path in store.full_guide.root.iter_with_paths()
        }
        theirs = {
            path: frozenset(node.leaf_docs)
            for node, path in rebuilt.full_guide.root.iter_with_paths()
        }
        assert ours == theirs

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            paper_store().remove_document(99)

    def test_remove_last_rejected(self):
        store = DocumentStore([XMLDocument(0, build_element("a"))])
        with pytest.raises(ValueError):
            store.remove_document(0)


class TestServerMaintenance:
    def test_added_document_served_to_new_queries(self):
        server = BroadcastServer(paper_store(), cycle_data_capacity=10**6)
        extra = XMLDocument(10, build_element("a", build_element("b", build_element("zz"))))
        server.add_document(extra)
        pending = server.submit(parse_query("/a/b/zz"), 0)
        assert pending.result_doc_ids == {10}
        cycle = server.build_cycle()
        assert 10 in cycle.doc_ids

    def test_resolution_cache_invalidated_on_add(self):
        server = BroadcastServer(paper_store())
        before = server.resolve(parse_query("/a/b"))
        extra = XMLDocument(10, build_element("a", build_element("b")))
        server.add_document(extra)
        after = server.resolve(parse_query("/a/b"))
        assert 10 in after and 10 not in before

    def test_removed_document_dropped_from_pending(self):
        server = BroadcastServer(paper_store(), cycle_data_capacity=128)
        pending = server.submit(parse_query("/a/b/a"), 0)  # d1, d2
        first = server.build_cycle()
        assert len(first.doc_ids) == 1
        # The other result document disappears before it was broadcast.
        remaining_doc = next(iter(pending.remaining_doc_ids))
        server.remove_document(remaining_doc)
        assert pending.is_satisfied
        assert server.pending == []

    def test_removal_mid_broadcast_keeps_others_pending(self):
        server = BroadcastServer(paper_store(), cycle_data_capacity=128)
        pending = server.submit(parse_query("/a//c"), 0)  # d2..d5
        server.build_cycle()
        victim = next(iter(pending.remaining_doc_ids))
        server.remove_document(victim)
        assert victim not in pending.remaining_doc_ids
        if pending.remaining_doc_ids:
            assert not pending.is_satisfied

    def test_remove_satisfies_never_indexed_query(self):
        """Regression: removal satisfying a query that no cycle ever served
        must not stamp a bogus pre-arrival ``satisfied_cycle``."""
        docs = [
            XMLDocument(0, build_element("a", build_element("b"))),
            XMLDocument(1, build_element("a", build_element("zz"))),
        ]
        server = BroadcastServer(DocumentStore(docs))
        pending = server.submit(parse_query("/a/zz"), arrival_time=0)
        assert pending.result_doc_ids == {1}
        # The sole result document vanishes before any cycle is built.
        server.remove_document(1)
        assert pending.is_satisfied
        assert pending.satisfied_time is not None
        assert pending.satisfied_cycle is None  # was cycle_number - 1 == -1
        assert pending.cycles_listened is None
        assert server.pending == []

    def test_remove_satisfying_indexed_query_stamps_cycle(self):
        """A query some cycle *did* serve keeps its satisfied_cycle stamp
        when removal finishes it off."""
        server = BroadcastServer(paper_store(), cycle_data_capacity=128)
        pending = server.submit(parse_query("/a/b/a"), 0)  # d1, d2
        server.build_cycle()
        assert pending.first_indexed_cycle == 0
        remaining_doc = next(iter(pending.remaining_doc_ids))
        server.remove_document(remaining_doc)
        assert pending.is_satisfied
        assert pending.satisfied_cycle == 0
        assert pending.cycles_listened == 1

    def test_resolution_cache_invalidated_on_remove(self):
        server = BroadcastServer(paper_store())
        before = server.resolve(parse_query("/a/b"))
        victim = next(iter(before))
        server.remove_document(victim)
        after = server.resolve(parse_query("/a/b"))
        assert victim in before and victim not in after

    def test_confirm_delivery_does_not_resurrect_removed_doc(self):
        """Regression: acknowledged delivery resets the remaining set from
        ``result_doc_ids``; documents removed from the collection since
        admission must stay dropped."""
        server = BroadcastServer(
            paper_store(), cycle_data_capacity=10**6, acknowledged_delivery=True
        )
        pending = server.submit(parse_query("/a/b/a"), 0)  # d1, d2 -> {0, 1}
        cycle = server.build_cycle()
        server.remove_document(1)
        assert pending.remaining_doc_ids == {0}
        server.confirm_delivery(pending, received_doc_ids=set(), cycle=cycle)
        assert pending.remaining_doc_ids == {0}  # doc 1 stays gone
        server.confirm_delivery(pending, received_doc_ids={0}, cycle=cycle)
        assert pending.is_satisfied
