"""Tests for the broadcast-cycle invariant checker."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.broadcast.program import IndexScheme
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.broadcast.validate import CycleValidationError, validate_cycle
from repro.xpath.generator import generate_workload
from tests.strategies import document_collections


def serve(store, queries, capacity=100_000, scheme=IndexScheme.TWO_TIER):
    server = BroadcastServer(store, cycle_data_capacity=capacity, scheme=scheme)
    for query in queries:
        server.submit(query, 0)
    return server


class TestValidCycles:
    def test_two_tier_cycle_validates(self, nitf_store, nitf_queries):
        server = serve(nitf_store, nitf_queries[:10])
        cycle = server.build_cycle()
        validate_cycle(cycle, nitf_store)

    def test_one_tier_cycle_validates(self, nitf_store, nitf_queries):
        server = serve(nitf_store, nitf_queries[:10], scheme=IndexScheme.ONE_TIER)
        validate_cycle(server.build_cycle(), nitf_store)

    def test_every_cycle_of_a_drain_validates(self, nitf_store, nitf_queries):
        server = serve(nitf_store, nitf_queries, capacity=30_000)
        count = 0
        while True:
            cycle = server.build_cycle()
            if cycle is None:
                break
            validate_cycle(cycle, nitf_store)
            count += 1
        assert count > 1

    @given(document_collections(min_docs=2))
    def test_random_collections_validate(self, docs):
        store = DocumentStore(docs)
        queries = generate_workload(docs, 4, seed=5)
        server = serve(store, queries, capacity=512)
        for _ in range(50):
            cycle = server.build_cycle()
            if cycle is None:
                break
            validate_cycle(cycle, store)


class TestViolationsDetected:
    def make_cycle(self, nitf_store, nitf_queries):
        return serve(nitf_store, nitf_queries[:8]).build_cycle()

    def test_gap_in_placement(self, nitf_store, nitf_queries):
        cycle = self.make_cycle(nitf_store, nitf_queries)
        victim = cycle.doc_ids[0]
        cycle.doc_offsets[victim] += 128
        with pytest.raises(CycleValidationError, match="expected"):
            validate_cycle(cycle, nitf_store)

    def test_offset_list_disagreement(self, nitf_store, nitf_queries):
        cycle = self.make_cycle(nitf_store, nitf_queries)
        # Shift every placement so the (immutable) offset list disagrees.
        for doc_id in cycle.doc_offsets:
            cycle.doc_offsets[doc_id] += 128
        with pytest.raises(CycleValidationError):
            validate_cycle(cycle, nitf_store)

    def test_wrong_air_bytes(self, nitf_store, nitf_queries):
        cycle = self.make_cycle(nitf_store, nitf_queries)
        victim = cycle.doc_ids[0]
        cycle.doc_air_bytes[victim] += 1
        with pytest.raises(CycleValidationError, match="aligned|store"):
            validate_cycle(cycle, nitf_store)

    def test_missing_placement(self, nitf_store, nitf_queries):
        cycle = self.make_cycle(nitf_store, nitf_queries)
        del cycle.doc_offsets[cycle.doc_ids[0]]
        with pytest.raises(CycleValidationError, match="missing|keys"):
            validate_cycle(cycle, nitf_store)

    def test_all_problems_collected(self, nitf_store, nitf_queries):
        cycle = self.make_cycle(nitf_store, nitf_queries)
        cycle.doc_air_bytes[cycle.doc_ids[0]] += 1
        del cycle.doc_offsets[cycle.doc_ids[-1]]
        with pytest.raises(CycleValidationError) as excinfo:
            validate_cycle(cycle, nitf_store)
        assert len(excinfo.value.problems) >= 2
