"""Unit tests for broadcast cycle assembly."""

from __future__ import annotations

import pytest

from repro.broadcast.packets import PacketKind
from repro.broadcast.program import IndexScheme, build_cycle_program
from repro.broadcast.server import DocumentStore
from repro.index.ci import build_full_ci
from repro.index.pruning import prune_to_pci
from repro.xpath.parser import parse_query


@pytest.fixture()
def setup():
    from tests.xpath.test_evaluator import paper_documents

    docs = paper_documents()
    store = DocumentStore(docs)
    ci = build_full_ci(docs)
    pci, _ = prune_to_pci(ci, [parse_query("/a/b"), parse_query("/a//c")])
    return store, pci


class TestTwoTierProgram:
    def test_segments_in_order(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0, 1], store)
        kinds = [segment.kind for segment in cycle.layout.segments]
        assert kinds == [
            PacketKind.FIRST_TIER_INDEX,
            PacketKind.SECOND_TIER_INDEX,
            PacketKind.DATA,
        ]

    def test_doc_offsets_inside_data_segment(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0, 1], store)
        data = cycle.layout.segment(PacketKind.DATA)
        for doc_id, offset in cycle.doc_offsets.items():
            assert data.start <= offset < data.end
            assert offset + cycle.doc_air_bytes[doc_id] <= data.end

    def test_docs_packed_back_to_back(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0, 1, 2], store)
        ordered = [cycle.doc_offsets[d] for d in cycle.doc_ids]
        assert ordered == sorted(ordered)
        for first, second in zip(cycle.doc_ids, cycle.doc_ids[1:]):
            assert (
                cycle.doc_offsets[first] + cycle.doc_air_bytes[first]
                == cycle.doc_offsets[second]
            )

    def test_offset_list_matches_layout(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [2, 0], store)
        assert dict(cycle.offset_list.entries) == cycle.doc_offsets

    def test_sizes(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0], store)
        assert cycle.first_tier_bytes == cycle.packed_first_tier.total_bytes
        assert cycle.offset_list_air_bytes >= cycle.offset_list.size_bytes
        assert cycle.total_bytes == cycle.layout.total_bytes
        assert cycle.data_bytes == store.air_bytes(0)

    def test_end_time(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0], store)
        cycle.start_time = 1000
        assert cycle.end_time == 1000 + cycle.total_bytes


class TestOneTierProgram:
    def test_segments(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0, 1], store, scheme=IndexScheme.ONE_TIER)
        kinds = [segment.kind for segment in cycle.layout.segments]
        assert kinds == [PacketKind.ONE_TIER_INDEX, PacketKind.DATA]

    def test_data_starts_after_bigger_index(self, setup):
        store, pci = setup
        one = build_cycle_program(0, pci, [0], store, scheme=IndexScheme.ONE_TIER)
        two = build_cycle_program(0, pci, [0], store, scheme=IndexScheme.TWO_TIER)
        one_data = one.layout.segment(PacketKind.DATA).start
        # One-tier index embeds pointers, so its index segment is bigger
        # than the first tier alone (but the two-tier scheme adds L_O).
        assert one_data >= one.packed_one_tier.total_bytes


class TestCycleQueries:
    def test_lookup_delegates_to_pci(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0, 1], store)
        query = parse_query("/a/b")
        assert cycle.lookup(query).doc_ids == pci.lookup(query).doc_ids

    def test_index_lookup_bytes_by_scheme(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [0], store)
        lookup = cycle.lookup(parse_query("/a/b"))
        one = cycle.index_lookup_bytes(lookup, IndexScheme.ONE_TIER)
        two = cycle.index_lookup_bytes(lookup, IndexScheme.TWO_TIER)
        assert one > 0 and two > 0
        assert two <= one  # first-tier nodes are smaller, fewer packets

    def test_empty_cycle_allowed(self, setup):
        store, pci = setup
        cycle = build_cycle_program(0, pci, [], store)
        assert cycle.doc_ids == ()
        assert cycle.offset_list.entries == ()
        assert cycle.data_bytes == 0
