"""Property suite for the multichannel cycle builder and client.

Hypothesis-driven invariants of ``repro.broadcast.multichannel``:

* **partition** -- every scheduled document airs on exactly one channel
  exactly once per cycle, for every allocation policy;
* **span bound** -- no channel's used bytes exceed the cycle's data
  segment (the air-byte span the cycle reserves);
* **deferral terminates** -- a single-tuner client facing cross-channel
  conflicts still retrieves every indexed result document in finitely
  many cycles, because each cycle containing a wanted document delivers
  at least one and acknowledged delivery keeps the rest scheduled;
* **tuning <= access** -- the tuning time of a completed session never
  exceeds its access time plus the initial probe packet (Eq. 1's
  accounting stays consistent under the extended second tier; the probe
  is charged to tuning but not to elapsed byte-time throughout the
  client stack -- the seed's ``TwoTierClient`` shows the same slack --
  so the physically rigorous inequality is ``tuning - probe <=
  access``).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.multichannel import (
    ALLOCATION_POLICIES,
    CHANNEL_ID_BYTES,
    ChannelOffsetList,
    allocate_channels,
    build_multichannel_program,
)
from repro.broadcast.packets import PacketKind
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.broadcast.validate import validate_cycle
from repro.client.multichannel import MultiChannelTwoTierClient
from tests.strategies import document_collections, queries


def _demand_sets_for(doc_ids, rng_ints):
    """A deterministic pseudo-demand map from a list of drawn ints."""
    demand = {}
    for position, doc_id in enumerate(doc_ids):
        queries_for = frozenset(
            rng_ints[(position + j) % len(rng_ints)] % 7 for j in range(3)
        )
        demand[doc_id] = queries_for
    return demand


class TestAllocationProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        document_collections(min_docs=1, max_docs=8),
        st.integers(min_value=1, max_value=6),
        st.sampled_from(ALLOCATION_POLICIES),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=3, max_size=8),
    )
    def test_partition_exactly_once(self, docs, num_channels, policy, rng_ints):
        """Channel queues partition the schedule: each doc on exactly one
        channel exactly once, schedule order preserved within a channel."""
        store = DocumentStore(docs)
        scheduled = [doc.doc_id for doc in docs]
        demand = _demand_sets_for(scheduled, rng_ints)
        allocated = allocate_channels(
            scheduled, store, num_channels, policy=policy, demand_sets=demand
        )
        assert len(allocated) == num_channels
        flat = [doc_id for queue in allocated for doc_id in queue]
        assert sorted(flat) == sorted(scheduled)  # exactly once each
        position = {doc_id: i for i, doc_id in enumerate(scheduled)}
        for queue in allocated:
            order = [position[doc_id] for doc_id in queue]
            assert order == sorted(order)  # schedule order survives

    @settings(max_examples=30, deadline=None)
    @given(
        document_collections(min_docs=1, max_docs=8),
        st.lists(queries(max_steps=3), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(ALLOCATION_POLICIES),
    )
    def test_channel_spans_bounded_by_data_segment(
        self, docs, query_list, num_channels, policy
    ):
        """No channel exceeds the cycle's reserved air-byte span, and the
        longest channel defines it exactly; the full validator passes."""
        server = BroadcastServer(
            DocumentStore(docs),
            num_data_channels=num_channels,
            channel_allocation=policy,
            cycle_data_capacity=2_000,
        )
        admitted = 0
        for query in query_list:
            try:
                server.submit(query, 0)
            except ValueError:
                continue
            admitted += 1
        if not admitted:
            return
        cycle = server.build_cycle()
        assert cycle is not None
        data = cycle.layout.segment(PacketKind.DATA)
        assert data is not None
        assert max(cycle.channel_spans) == data.length
        for span in cycle.channel_spans:
            assert 0 <= span <= data.length
        validate_cycle(cycle, server.store)

    def test_channel_field_elided_only_at_k1(self):
        entries = ((1, 0, 100), (4, 0, 200))
        single = ChannelOffsetList(entries=entries, num_channels=1)
        multi = ChannelOffsetList(entries=entries, num_channels=2)
        assert multi.entry_bytes == single.entry_bytes + CHANNEL_ID_BYTES


class TestClientProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        document_collections(min_docs=3, max_docs=8),
        st.lists(queries(max_steps=3), min_size=1, max_size=4),
        st.integers(min_value=2, max_value=4),
        st.sampled_from(ALLOCATION_POLICIES),
    )
    def test_deferral_terminates(self, docs, query_list, num_channels, policy):
        """Despite cross-channel conflicts every client retrieves all of
        its indexed result documents in finitely many cycles."""
        server = BroadcastServer(
            DocumentStore(docs),
            num_data_channels=num_channels,
            channel_allocation=policy,
            cycle_data_capacity=1_000,
            acknowledged_delivery=True,
        )
        clients = []
        for query in query_list:
            try:
                pending = server.submit(query, 0)
            except ValueError:
                continue
            clients.append((pending, MultiChannelTwoTierClient(query, 0)))
        if not clients:
            return
        cycles = 0
        while server.pending:
            cycle = server.build_cycle()
            assert cycle is not None
            for pending, client in clients:
                if client.satisfied:
                    continue
                client.on_cycle(cycle)
                server.confirm_delivery(pending, client.received_doc_ids, cycle)
            cycles += 1
            assert cycles < 300, "deferral failed to terminate"
        for _pending, client in clients:
            assert client.satisfied
            assert client.received_doc_ids >= client.expected_doc_ids

    @settings(max_examples=15, deadline=None)
    @given(
        document_collections(min_docs=3, max_docs=8),
        st.lists(queries(max_steps=3), min_size=1, max_size=4),
        st.integers(min_value=1, max_value=4),
    )
    def test_tuning_at_most_access(self, docs, query_list, num_channels):
        """For every completed session, tuning time <= access time."""
        server = BroadcastServer(
            DocumentStore(docs),
            num_data_channels=num_channels,
            channel_allocation="balanced",
            cycle_data_capacity=1_000,
            acknowledged_delivery=True,
        )
        clients = []
        for query in query_list:
            try:
                pending = server.submit(query, 0)
            except ValueError:
                continue
            clients.append((pending, MultiChannelTwoTierClient(query, 0)))
        if not clients:
            return
        guard = 0
        while server.pending:
            cycle = server.build_cycle()
            assert cycle is not None
            for pending, client in clients:
                if client.satisfied:
                    continue
                client.on_cycle(cycle)
                server.confirm_delivery(pending, client.received_doc_ids, cycle)
            guard += 1
            assert guard < 300
        for _pending, client in clients:
            metrics = client.metrics
            assert metrics.completion_time is not None
            # Everything after the probe is listened inside the elapsed
            # window: per cycle, the selective first-tier read, the full
            # offset read and the downloaded documents occupy disjoint
            # byte-time intervals of that cycle, and completion stamps
            # the last document's end.  The probe packet alone is charged
            # outside elapsed time (same accounting as TwoTierClient).
            assert (
                metrics.tuning_bytes - metrics.probe_bytes
                <= metrics.access_bytes
            )
