"""Unit tests for the document schedulers."""

from __future__ import annotations

import warnings

import pytest

from repro.broadcast.scheduling import (
    DemandTable,
    FCFSScheduler,
    LeeLoScheduler,
    MostRequestedFirstScheduler,
    RxWScheduler,
    _demand_table,
    make_scheduler,
    scheduler_names,
)
from repro.broadcast.server import DocumentStore, PendingQuery
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.parser import parse_query


def tiny_store() -> DocumentStore:
    docs = [
        XMLDocument(i, build_element("a", build_element("b", text="x" * (20 * (i + 1)))))
        for i in range(4)
    ]
    return DocumentStore(docs)


def pending(query_id: int, arrival: int, remaining) -> PendingQuery:
    return PendingQuery(
        query_id=query_id,
        query=parse_query("/a/b"),
        arrival_time=arrival,
        result_doc_ids=frozenset(remaining),
    )


class TestFCFS:
    def test_oldest_query_first(self):
        scheduler = FCFSScheduler()
        older = pending(0, 0, {2, 3})
        newer = pending(1, 100, {0})
        ranked = scheduler.rank([newer, older], now=200)
        assert ranked == [2, 3, 0]

    def test_dedupes_across_queries(self):
        scheduler = FCFSScheduler()
        ranked = scheduler.rank([pending(0, 0, {1}), pending(1, 1, {1, 2})], now=5)
        assert ranked == [1, 2]


class TestMRF:
    def test_popularity_order(self):
        scheduler = MostRequestedFirstScheduler()
        queries = [pending(0, 0, {1, 2}), pending(1, 0, {2}), pending(2, 0, {2, 3})]
        ranked = scheduler.rank(queries, now=0)
        assert ranked[0] == 2  # wanted by all three
        assert set(ranked) == {1, 2, 3}

    def test_tie_breaks_by_doc_id(self):
        scheduler = MostRequestedFirstScheduler()
        ranked = scheduler.rank([pending(0, 0, {5, 3})], now=0)
        assert ranked == [3, 5]


class TestRxW:
    def test_wait_weighting(self):
        scheduler = RxWScheduler()
        old = pending(0, 0, {1})
        new = pending(1, 90, {2})
        ranked = scheduler.rank([old, new], now=100)
        assert ranked[0] == 1  # same popularity, longer wait wins

    def test_popularity_can_beat_wait(self):
        scheduler = RxWScheduler()
        lonely_old = pending(0, 0, {1})
        crowd = [pending(i, 99, {2}) for i in range(1, 150)]
        ranked = scheduler.rank([lonely_old] + crowd, now=100)
        assert ranked[0] == 2


class TestLeeLo:
    def test_completion_first(self):
        """A document finishing a nearly-done query beats a fragment of a
        huge query."""
        with pytest.warns(RuntimeWarning, match="without a document store"):
            scheduler = LeeLoScheduler()
        nearly_done = pending(0, 0, {7})
        huge = pending(1, 0, {i for i in range(10, 30)})
        ranked = scheduler.rank([nearly_done, huge], now=0)
        assert ranked[0] == 7

    def test_shared_docs_accumulate_score(self):
        with pytest.warns(RuntimeWarning, match="without a document store"):
            scheduler = LeeLoScheduler()
        queries = [pending(0, 0, {1, 2}), pending(1, 0, {2, 3})]
        ranked = scheduler.rank(queries, now=0)
        assert ranked[0] == 2  # scores 0.5 + 0.5 vs 0.5

    def test_storeless_construction_warns(self):
        with pytest.warns(RuntimeWarning, match="tie-break degrades"):
            LeeLoScheduler()

    def test_store_construction_is_silent(self):
        store = tiny_store()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            LeeLoScheduler(store)

    def test_size_tie_break_with_store(self):
        store = tiny_store()
        scheduler = LeeLoScheduler(store)
        # Docs 0 and 3 both single-query, same remaining size -> smaller doc
        # (doc 0) wins the tie.
        queries = [pending(0, 0, {0}), pending(1, 0, {3})]
        assert scheduler.rank(queries, now=0)[0] == 0


class TestSelect:
    def test_respects_capacity(self):
        store = tiny_store()
        scheduler = FCFSScheduler()
        queries = [pending(0, 0, {0, 1, 2, 3})]
        capacity = store.air_bytes(0) + store.air_bytes(1)
        chosen = scheduler.select(queries, store, capacity, now=0)
        total = sum(store.air_bytes(d) for d in chosen)
        assert total <= capacity

    def test_always_schedules_at_least_one(self):
        store = tiny_store()
        scheduler = FCFSScheduler()
        chosen = scheduler.select([pending(0, 0, {3})], store, capacity_bytes=1, now=0)
        assert chosen == [3]

    def test_skips_too_big_but_continues(self):
        store = tiny_store()
        scheduler = FCFSScheduler()
        # Capacity fits doc 0 and doc 1 but not doc 3 in between.
        queries = [pending(0, 0, {3, 0, 1})]
        capacity = store.air_bytes(0) + store.air_bytes(1)
        chosen = scheduler.select(queries, store, capacity, now=0)
        assert 0 in chosen or 1 in chosen

    def test_empty_pending(self):
        store = tiny_store()
        assert FCFSScheduler().select([], store, 1000, now=0) == []

    def test_oversized_first_doc_still_scheduled(self):
        """A document larger than the whole cycle is scheduled alone --
        otherwise it could never be delivered."""
        store = tiny_store()
        capacity = store.air_bytes(3) - 1
        chosen = FCFSScheduler().select([pending(0, 0, {3})], store, capacity, now=0)
        assert chosen == [3]

    def test_exact_fit_stops_the_fill(self):
        """Once the budget is exactly consumed the loop breaks; later
        candidates are not considered."""
        store = tiny_store()
        capacity = store.air_bytes(0) + store.air_bytes(1)
        chosen = FCFSScheduler().select(
            [pending(0, 0, {0, 1, 2})], store, capacity, now=0
        )
        assert chosen == [0, 1]
        assert sum(store.air_bytes(d) for d in chosen) == capacity

    def test_skip_then_fit(self):
        """A too-big candidate mid-list is skipped, not a hard stop: a
        later, smaller document can still use the remaining budget."""
        store = tiny_store()
        # FCFS rank order: [0, 3, 1] (older query's docs sorted, then newer).
        queries = [pending(0, 0, {0, 3}), pending(1, 1, {1})]
        capacity = store.air_bytes(0) + store.air_bytes(1)
        assert store.air_bytes(3) > store.air_bytes(1)  # 3 cannot fit after 0
        chosen = FCFSScheduler().select(queries, store, capacity, now=5)
        assert chosen == [0, 1]


class TestFactory:
    def test_all_names(self):
        assert set(scheduler_names()) == {"fcfs", "mrf", "rxw", "leelo"}

    def test_make_each(self):
        store = tiny_store()
        for name in scheduler_names():
            scheduler = make_scheduler(name, store)
            assert scheduler.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("bogus")

    def test_leelo_without_store_rejected(self):
        """The factory refuses a degraded Lee-Lo instead of warning."""
        with pytest.raises(ValueError, match="DocumentStore"):
            make_scheduler("leelo")

    def test_storeless_names_work_without_store(self):
        for name in ("fcfs", "mrf", "rxw"):
            assert make_scheduler(name).name == name


class TestDemandTable:
    def _queries(self):
        return [
            pending(0, 0, {0, 1}),
            pending(1, 5, {1, 2}),
            pending(2, 50, {3}),  # future arrival at now=10
        ]

    def test_snapshot_matches_rebuild(self):
        queries = self._queries()
        table = DemandTable()
        for q in queries:
            table.add_query(q)
        now = 10
        active = [q for q in queries if q.arrival_time <= now]
        rebuilt = _demand_table(active)
        snap = table.snapshot(now)
        assert set(snap) == set(rebuilt)
        for doc_id in rebuilt:
            assert {q.query_id for q in snap[doc_id]} == {
                q.query_id for q in rebuilt[doc_id]
            }

    def test_satisfied_queries_vanish_when_mirrored(self):
        """The server mirrors every remaining-set shrink; once a query's
        last edge is discarded the table forgets it entirely."""
        q = pending(0, 0, {0, 1})
        table = DemandTable()
        table.add_query(q)
        q.remaining_doc_ids = set()  # satisfied...
        table.discard(0, q)
        table.discard(1, q)  # ...and mirrored
        assert table.snapshot(now=10) == {}

    def test_future_arrival_filtered_then_visible(self):
        q = pending(0, 50, {0})
        table = DemandTable()
        table.add_query(q)
        assert table.snapshot(now=10) == {}  # not yet arrived
        snap = table.snapshot(now=50)
        assert {p.query_id for p in snap[0]} == {0}

    def test_discard_edge_and_doc(self):
        queries = self._queries()
        table = DemandTable()
        for q in queries:
            table.add_query(q)
        table.discard(1, queries[0])
        snap = table.snapshot(now=10)
        assert {q.query_id for q in snap[1]} == {1}
        table.discard(1, queries[1])
        assert 1 not in table.snapshot(now=10)
        table.discard_doc(0)
        assert 0 not in table.snapshot(now=10)
        # Discarding absent edges is a no-op, not an error.
        table.discard(99, queries[0])

    def test_rank_with_table_matches_rank_without(self):
        store = tiny_store()
        queries = [pending(0, 0, {0, 1}), pending(1, 2, {1, 2}), pending(2, 4, {3})]
        table = DemandTable()
        for q in queries:
            table.add_query(q)
        for scheduler in (
            MostRequestedFirstScheduler(),
            RxWScheduler(),
            LeeLoScheduler(store),
        ):
            assert scheduler.rank(queries, now=10, demand=table) == scheduler.rank(
                queries, now=10
            )
