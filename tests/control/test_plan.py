"""Plan objects: validation, shape comparison, wire form."""

from __future__ import annotations

import json

import pytest

from repro.control import ControlConfig, CyclePlan


class TestControlConfig:
    def test_defaults_validate(self):
        ControlConfig()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"k_min": 0},
            {"k_min": 3, "k_max": 2},
            {"k_max": 256},
            {"cooldown_cycles": -1},
            {"grow_backlog_factor": 0.0},
            {"shrink_idle_frac": 1.5},
            {"shrink_backlog_factor": -1.0},
            {"policy_switch_margin": -0.1},
            {"policy_patience": 0},
            {"hot_set_size": -1},
            {"hot_min_queries": 0},
            {"shed_backlog_factor": 0.0},
            {"retry_after_cycles": 0},
        ],
    )
    def test_bad_knobs_rejected(self, overrides):
        with pytest.raises(ValueError):
            ControlConfig(**overrides)

    def test_frozen(self):
        config = ControlConfig()
        with pytest.raises(Exception):
            config.k_max = 8  # type: ignore[misc]


class TestCyclePlan:
    def test_bad_channel_count_rejected(self):
        with pytest.raises(ValueError):
            CyclePlan(cycle_number=0, num_channels=0, allocation="balanced")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CyclePlan(cycle_number=0, num_channels=1, allocation="chaotic")

    def test_duplicate_hot_docs_rejected(self):
        with pytest.raises(ValueError):
            CyclePlan(
                cycle_number=0,
                num_channels=2,
                allocation="demand",
                hot_doc_ids=(3, 3),
            )

    def test_same_shape_ignores_cycle_number_and_reason(self):
        a = CyclePlan(0, 2, "balanced", hot_doc_ids=(1,), reason="grow-k:2")
        b = CyclePlan(9, 2, "balanced", hot_doc_ids=(1,), reason="steady")
        assert a.same_shape(b) and b.same_shape(a)

    @pytest.mark.parametrize(
        "other",
        [
            CyclePlan(0, 3, "balanced", hot_doc_ids=(1,)),
            CyclePlan(0, 2, "demand", hot_doc_ids=(1,)),
            CyclePlan(0, 2, "balanced", hot_doc_ids=(2,)),
            CyclePlan(0, 2, "balanced", hot_doc_ids=(1,), shed=True),
        ],
    )
    def test_same_shape_detects_every_field(self, other):
        base = CyclePlan(0, 2, "balanced", hot_doc_ids=(1,))
        assert not base.same_shape(other)

    def test_header_minimal_form_is_stable(self):
        """A steady plan's wire form carries only K and the policy --
        optional keys stay absent so static-shaped headers never grow."""
        header = CyclePlan(4, 2, "round-robin").header()
        assert header == {"k": 2, "policy": "round-robin"}

    def test_header_optional_keys(self):
        header = CyclePlan(
            4, 3, "demand", hot_doc_ids=(7, 2), shed=True
        ).header()
        assert header == {
            "k": 3,
            "policy": "demand",
            "hot": [7, 2],
            "shed": True,
        }

    def test_header_json_round_trips(self):
        header = CyclePlan(1, 2, "balanced", hot_doc_ids=(5,)).header()
        assert json.loads(json.dumps(header)) == header
