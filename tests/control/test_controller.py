"""Control laws of the adaptive broadcast controller.

Observations here are synthetic (plain :class:`Observation` records), so
each law is pinned in isolation; the end-to-end loop against a real
server runs in ``tests/integration/test_adaptive_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.broadcast.server import DocumentStore
from repro.control import AdaptiveController, ControlConfig, Observation


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:20])


CAPACITY = 1_000


def make_controller(store, control=None, *, base_channels=1, **kwargs):
    return AdaptiveController(
        control or ControlConfig(),
        store,
        cycle_data_capacity=CAPACITY,
        base_channels=base_channels,
        **kwargs,
    )


def observation(
    cycle: int,
    *,
    k: int = 1,
    policy: str = "balanced",
    backlog: int = 0,
    spans: Tuple[int, ...] = (CAPACITY,),
    idle: int = 0,
    scheduled: Tuple[int, ...] = (),
    demand: Dict[int, frozenset] = None,
) -> Observation:
    return Observation(
        cycle_number=cycle,
        num_channels=k,
        allocation=policy,
        now=(cycle + 1) * CAPACITY,
        queue_depth=len(demand or {}),
        backlog_bytes=backlog,
        mean_wait=0.0,
        scheduled_doc_ids=scheduled,
        channel_spans=spans,
        idle_padding_bytes=idle,
        degraded=False,
        demand_sets=demand or {},
    )


class TestKController:
    def test_grows_on_backlog(self, store):
        controller = make_controller(store)
        plan = controller.observe(observation(0, backlog=2 * CAPACITY))
        assert plan.num_channels == 2
        assert "grow-k:2" in plan.reason
        assert controller.k_changes == 1

    def test_grow_is_proportional_to_backlog(self, store):
        """A step load jumps K straight to the covering width -- one
        re-tune, not a +1-per-cycle ramp."""
        controller = make_controller(store)
        plan = controller.observe(observation(0, backlog=10 * CAPACITY))
        assert plan.num_channels == 4  # k_max caps the jump
        assert controller.k_changes == 1

    def test_cooldown_blocks_consecutive_changes(self, store):
        controller = make_controller(store)
        controller.observe(observation(0, backlog=2 * CAPACITY))
        # 2x the widened capacity again -- but the cooldown holds.
        plan = controller.observe(observation(1, backlog=4 * CAPACITY))
        assert plan.num_channels == 2  # cooldown_cycles=2 holds the line
        plan = controller.observe(observation(2, backlog=4 * CAPACITY))
        assert plan.num_channels == 3

    def test_band_is_respected(self, store):
        control = ControlConfig(k_min=1, k_max=2, cooldown_cycles=0)
        controller = make_controller(store, control)
        for cycle in range(5):
            plan = controller.observe(
                observation(cycle, backlog=100 * CAPACITY)
            )
        assert plan.num_channels == 2

    def test_shrinks_on_idle_when_backlog_fits(self, store):
        controller = make_controller(store, base_channels=2)
        plan = controller.observe(
            observation(
                0,
                k=2,
                backlog=CAPACITY // 2,
                spans=(CAPACITY, 100),
                idle=CAPACITY - 100,  # idle fraction 0.45 > 0.35
            )
        )
        assert plan.num_channels == 1
        assert "shrink-k:1" in plan.reason

    def test_no_shrink_when_backlog_would_not_fit(self, store):
        controller = make_controller(store, base_channels=2)
        plan = controller.observe(
            observation(
                0,
                k=2,
                backlog=2 * CAPACITY,  # > 0.9 x shrunk capacity
                spans=(CAPACITY, 100),
                idle=CAPACITY - 100,
            )
        )
        assert plan.num_channels == 2

    def test_base_channels_clamped_into_band(self, store):
        control = ControlConfig(k_min=2, k_max=3)
        controller = make_controller(store, control, base_channels=1)
        assert controller.num_channels == 2


class _ScriptedCosts(AdaptiveController):
    """Override the counterfactual replay with scripted outcomes."""

    script: Dict[str, int] = {}

    def _allocation_cost(self, schedule, policy, demand_sets):
        return self.script[policy]


class TestPolicyRegret:
    def make(self, store, control=None):
        controller = _ScriptedCosts(
            control or ControlConfig(),
            store,
            cycle_data_capacity=CAPACITY,
            base_channels=2,
        )
        return controller

    def test_switches_after_patience(self, store):
        controller = self.make(store)
        controller.script = {"balanced": 100, "demand": 50, "round-robin": 90}
        first = controller.observe(observation(0, k=2, scheduled=(1, 2, 3)))
        assert first.allocation == "balanced"  # patience=2: not yet
        second = controller.observe(observation(1, k=2, scheduled=(1, 2, 3)))
        assert second.allocation == "demand"
        assert "switch-policy:demand" in second.reason
        assert controller.policy_switches == 1

    def test_one_regret_cycle_does_not_flap(self, store):
        controller = self.make(store)
        controller.script = {"balanced": 100, "demand": 50, "round-robin": 90}
        controller.observe(observation(0, k=2, scheduled=(1, 2, 3)))
        controller.script = {"balanced": 50, "demand": 50, "round-robin": 90}
        plan = controller.observe(observation(1, k=2, scheduled=(1, 2, 3)))
        assert plan.allocation == "balanced"
        assert controller.policy_switches == 0

    def test_margin_filters_small_regret(self, store):
        controller = self.make(store)
        controller.script = {"balanced": 100, "demand": 97, "round-robin": 99}
        for cycle in range(4):
            plan = controller.observe(
                observation(cycle, k=2, scheduled=(1, 2, 3))
            )
        assert plan.allocation == "balanced"  # 3% < 5% margin

    def test_inactive_below_two_channels(self, store):
        controller = self.make(store)
        controller.num_channels = 1
        controller.script = {}
        plan = controller.observe(observation(0, k=1, scheduled=(1, 2, 3)))
        assert plan.allocation == "balanced"

    def test_cost_charges_single_tuner_conflicts(self, store):
        """The estimator prices what the client pays, not raw packing.

        One query wanting two documents: a policy that co-locates them
        costs their sequential air time; one that splits them across
        channels at overlapping offsets costs a full extra pass."""
        controller = make_controller(store, base_channels=2)
        by_air = sorted(store.by_id, key=lambda d: (store.air_bytes(d), d))
        doc_a, doc_b = by_air[:2]  # the query's two small documents
        doc_c = by_air[-1]  # undemanded ballast filling the other channel
        air_a, air_b = store.air_bytes(doc_a), store.air_bytes(doc_b)
        assert store.air_bytes(doc_c) > air_a + air_b  # co-location fits
        demand = {doc_a: frozenset({1}), doc_b: frozenset({1})}
        schedule = (doc_a, doc_b, doc_c)
        # demand affinity co-locates query 1's documents on one channel:
        # the tuner reads them back to back.
        colocated = controller._allocation_cost(schedule, "demand", demand)
        assert colocated == air_a + air_b
        # round-robin lands them at offset 0 of two channels: the single
        # tuner downloads one, defers the other a full cycle span.
        split = controller._allocation_cost(schedule, "round-robin", demand)
        assert split > colocated
        span = air_a + store.air_bytes(doc_c)  # channel 0 carries a + c
        assert split == span + max(air_a, air_b)

    def test_cost_without_demand_is_zero(self, store):
        """No pending queries -- nothing to pay, whatever the layout."""
        controller = make_controller(store, base_channels=2)
        schedule = tuple(sorted(store.by_id))[:4]
        for policy in ("round-robin", "balanced", "demand"):
            assert controller._allocation_cost(schedule, policy, {}) == 0


class TestHotSet:
    def control(self):
        return ControlConfig(hot_set_size=2, hot_min_queries=2)

    def test_most_demanded_docs_promoted(self, store):
        controller = make_controller(store, self.control(), base_channels=2)
        demand = {
            1: frozenset({10, 11, 12}),
            2: frozenset({13}),
            3: frozenset({14, 15}),
            4: frozenset({16, 17}),
        }
        plan = controller.observe(observation(0, k=2, demand=demand))
        # Ranked by demand count desc, doc id asc: 1 (3), then 3 (2).
        assert plan.hot_doc_ids == (1, 3)

    def test_threshold_filters_cold_docs(self, store):
        controller = make_controller(store, self.control(), base_channels=2)
        plan = controller.observe(
            observation(0, k=2, demand={1: frozenset({10})})
        )
        assert plan.hot_doc_ids == ()

    def test_demoted_below_two_channels(self, store):
        controller = make_controller(store, self.control(), base_channels=2)
        controller.hot_doc_ids = (1,)
        controller.num_channels = 1
        plan = controller.observe(observation(0, k=1))
        assert plan.hot_doc_ids == ()
        assert "demote-hot" in plan.reason

    def test_is_cold_spares_hot_overlap(self, store):
        controller = make_controller(store, self.control(), base_channels=2)
        controller.hot_doc_ids = (1, 3)
        assert controller.is_cold(frozenset({2, 4}))
        assert not controller.is_cold(frozenset({3, 9}))

    def test_everything_cold_without_hot_set(self, store):
        controller = make_controller(store)
        assert controller.is_cold(frozenset({1}))


class TestGovernor:
    def test_shed_toggles_with_backlog(self, store):
        # Pin K so backlog drives the governor, not the K controller
        # (growing K would double the capacity the threshold scales by).
        controller = make_controller(store, ControlConfig(k_min=1, k_max=1))
        plan = controller.observe(observation(0, backlog=7 * CAPACITY))
        assert plan.shed and "shed-on" in plan.reason
        plan = controller.observe(observation(1, backlog=CAPACITY))
        assert not plan.shed and "shed-off" in plan.reason

    def test_record_shed_counts(self, store):
        controller = make_controller(store)
        controller.record_shed()
        controller.record_shed(2)
        assert controller.shed_queries == 3


class TestDeterminism:
    def stream(self):
        yield observation(0, backlog=2 * CAPACITY)
        yield observation(
            1,
            k=2,
            backlog=8 * CAPACITY,
            demand={1: frozenset({10, 11, 12}), 2: frozenset({13, 14})},
        )
        yield observation(2, k=2, scheduled=(1, 2, 3))
        yield observation(3, k=2, spans=(CAPACITY, 50), idle=CAPACITY - 50)

    def test_same_stream_same_plans(self, store):
        control = ControlConfig(hot_set_size=2, hot_min_queries=2)
        a = make_controller(store, control)
        b = make_controller(store, control)
        plans_a = [a.observe(o) for o in self.stream()]
        plans_b = [b.observe(o) for o in self.stream()]
        assert plans_a == plans_b

    def test_plan_targets_next_cycle(self, store):
        controller = make_controller(store)
        plan = controller.observe(observation(7))
        assert plan.cycle_number == 8

    def test_current_plan_reflects_state(self, store):
        controller = make_controller(store, base_channels=2)
        plan = controller.current_plan(5)
        assert plan.cycle_number == 5
        assert plan.num_channels == 2
        assert plan.allocation == "balanced"

    def test_plan_changes_counts_shape_changes_only(self, store):
        controller = make_controller(store)
        controller.observe(observation(0))
        controller.observe(observation(1))
        assert controller.plan_changes == 1  # the initial plan only
        controller.observe(observation(2, backlog=2 * CAPACITY))
        assert controller.plan_changes == 2
