"""Tests for broadcast-trace export and analysis."""

from __future__ import annotations

import json

import pytest

from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.tools.trace import (
    export_query_traces,
    export_trace,
    load_trace,
    summarise_trace,
)


@pytest.fixture(scope="module")
def run_result():
    return run_simulation(small_setup())


@pytest.fixture(scope="module")
def observed_run_result():
    from repro import obs

    with obs.observed():
        return run_simulation(small_setup())


def _minimal_v1_lines():
    """A hand-written v1 trace: no byte breakdown, no phase data."""
    return [
        json.dumps(
            {
                "kind": "meta",
                "format": 1,
                "collection_bytes": 1000,
                "document_count": 3,
                "completed": True,
            }
        ),
        json.dumps(
            {
                "kind": "cycle",
                "cycle": 1,
                "start": 0,
                "total_bytes": 500,
                "data_bytes": 400,
                "doc_count": 3,
                "pending": 2,
                "ci_bytes": 60,
                "pci_bytes": 40,
                "first_tier_bytes": 20,
                "offset_list_bytes": 30,
            }
        ),
        json.dumps(
            {
                "kind": "client",
                "query": "/a/b",
                "protocol": "two-tier",
                "arrival": 0,
                "result_docs": 1,
                "cycles": 2,
                "index_lookup_bytes": 25,
                "tuning_bytes": 125,
                "access_bytes": 500,
            }
        ),
    ]


class TestExportAndLoad:
    def test_round_trip(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        records = load_trace(path)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "meta"
        assert kinds.count("cycle") == len(run_result.cycles)
        assert kinds.count("client") == len(run_result.clients)

    def test_meta_fields(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        meta = load_trace(path)[0]
        assert meta["collection_bytes"] == run_result.collection_bytes
        assert meta["completed"] == run_result.completed

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "format": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad JSON"):
            load_trace(path)

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "cycle"}\n')
        with pytest.raises(ValueError, match="meta"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "format": 42}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)


class TestFormatV2:
    def test_observed_round_trip_carries_phases_and_metrics(
        self, tmp_path, observed_run_result
    ):
        path = export_trace(observed_run_result, tmp_path / "v2.jsonl")
        records = load_trace(path)
        # The writer stamps the current format (v3); the v2 observability
        # records it introduced are unchanged.
        assert records[0]["format"] == 3
        cycles = [r for r in records if r["kind"] == "cycle"]
        assert all("phase_seconds" in c for c in cycles)
        assert "prune_to_pci" in cycles[0]["phase_seconds"]
        metrics = [r for r in records if r["kind"] == "metrics"]
        assert len(metrics) == 1
        assert "spans" in metrics[0]["snapshot"]

    def test_v2_summary_aggregates_phases(self, tmp_path, observed_run_result):
        path = export_trace(observed_run_result, tmp_path / "v2.jsonl")
        summary = summarise_trace(load_trace(path))
        assert summary.phase_seconds
        expected = sum(
            c.phase_seconds.get("prune_to_pci", 0.0)
            for c in observed_run_result.cycles
        )
        assert summary.phase_seconds["prune_to_pci"] == pytest.approx(expected)
        assert summary.metrics is not None
        assert summary.metrics == observed_run_result.metrics

    def test_unobserved_export_omits_observability_records(
        self, tmp_path, run_result
    ):
        path = export_trace(run_result, tmp_path / "plain.jsonl")
        records = load_trace(path)
        assert not any(r["kind"] == "metrics" for r in records)
        assert not any(
            "phase_seconds" in r for r in records if r["kind"] == "cycle"
        )

    def test_client_byte_breakdown_round_trips(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        clients = [r for r in load_trace(path) if r["kind"] == "client"]
        assert sum(c["doc_bytes"] for c in clients) == sum(
            r.doc_bytes for r in run_result.clients
        )
        assert sum(c["probe_bytes"] for c in clients) == sum(
            r.probe_bytes for r in run_result.clients
        )


class TestV1Compatibility:
    def test_v1_trace_still_loads_and_summarises(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        path.write_text("\n".join(_minimal_v1_lines()) + "\n")
        summary = summarise_trace(load_trace(path))
        assert summary.cycles == 1
        assert summary.clients == 1
        assert summary.lookup_mean("two-tier") == 25.0
        assert summary.phase_seconds == {}
        assert summary.metrics is None


class TestRecordValidation:
    def test_malformed_cycle_record_names_file_and_line(self, tmp_path):
        lines = _minimal_v1_lines()
        lines[1] = json.dumps({"kind": "cycle", "cycle": 1})
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2.*cycle record"):
            load_trace(path)

    def test_malformed_client_record_names_file_and_line(self, tmp_path):
        lines = _minimal_v1_lines()
        lines[2] = json.dumps({"kind": "client", "query": "/a"})
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:3.*client record"):
            load_trace(path)

    def test_missing_keys_are_named(self, tmp_path):
        lines = _minimal_v1_lines()
        lines[2] = json.dumps({"kind": "client", "query": "/a"})
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="tuning_bytes"):
            load_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        lines = _minimal_v1_lines() + [json.dumps({"kind": "mystery"})]
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=r"bad\.jsonl:4.*unknown record kind"):
            load_trace(path)

    def test_metrics_record_requires_snapshot(self, tmp_path):
        lines = _minimal_v1_lines() + [json.dumps({"kind": "metrics"})]
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="snapshot"):
            load_trace(path)


class TestSummarise:
    def test_matches_result_aggregates(self, tmp_path, run_result):
        """Trace-side aggregation must agree with the simulator's own."""
        path = export_trace(run_result, tmp_path / "run.jsonl")
        summary = summarise_trace(load_trace(path))
        assert summary.cycles == len(run_result.cycles)
        assert summary.clients == len(run_result.clients)
        assert summary.lookup_mean("two-tier") == pytest.approx(
            run_result.mean_index_lookup_bytes("two-tier")
        )
        assert summary.lookup_mean("one-tier") == pytest.approx(
            run_result.mean_index_lookup_bytes("one-tier")
        )
        assert summary.mean_pci_bytes == pytest.approx(run_result.mean_pci_bytes())

    def test_unknown_protocol_lookup(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        summary = summarise_trace(load_trace(path))
        assert summary.lookup_mean("no-such-protocol") == 0.0


def _query_trace():
    from repro.obs.telemetry import QueryTrace

    return QueryTrace(
        trace_id="t1",
        query="//nitf",
        query_id=0,
        cycle=2,
        submit=1.0,
        admit=1.1,
        build_start=1.5,
        build_end=1.8,
        stream_start=1.8,
        last_doc=2.4,
        received=2.5,
    )


class TestFormatV3:
    def test_export_query_traces_round_trip(self, tmp_path):
        path = export_query_traces(
            [_query_trace()],
            tmp_path / "wire.jsonl",
            collection_bytes=1234,
            document_count=25,
            events=[{"event": "admit", "query_id": 0}],
        )
        records = load_trace(path)
        assert records[0]["format"] == 3
        assert records[0]["collection_bytes"] == 1234
        kinds = [r["kind"] for r in records]
        assert kinds == ["meta", "query_trace", "event"]
        trace = records[1]
        assert trace["trace_id"] == "t1"
        assert trace["components"]["total_seconds"] == pytest.approx(1.5)
        assert records[2]["event"] == "admit"

    def test_accepts_prebuilt_record_dicts(self, tmp_path):
        record = _query_trace().to_record()
        path = export_query_traces([record], tmp_path / "wire.jsonl")
        assert load_trace(path)[1]["query"] == "//nitf"

    def test_query_trace_record_requires_components(self, tmp_path):
        lines = _minimal_v1_lines()
        lines[0] = json.dumps(
            {
                "kind": "meta",
                "format": 3,
                "collection_bytes": 0,
                "document_count": 0,
                "completed": 1,
            }
        )
        lines.append(json.dumps({"kind": "query_trace", "trace_id": "t1"}))
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="components"):
            load_trace(path)

    def test_event_record_requires_event_key(self, tmp_path):
        lines = _minimal_v1_lines()
        lines.append(json.dumps({"kind": "event", "level": "info"}))
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="event record"):
            load_trace(path)

    def test_v2_traces_still_load(self, tmp_path, observed_run_result):
        """export_trace writes format 3 now, but hand-pinned v2 input
        (the previous exporter's output shape) keeps loading."""
        lines = _minimal_v1_lines()
        meta = json.loads(lines[0])
        meta["format"] = 2
        lines[0] = json.dumps(meta)
        lines.append(json.dumps({"kind": "metrics", "snapshot": {}}))
        path = tmp_path / "v2.jsonl"
        path.write_text("\n".join(lines) + "\n")
        records = load_trace(path)
        assert records[0]["format"] == 2

    def test_stats_report_renders_wire_latency(self, tmp_path):
        from repro.obs.report import report_from_trace

        path = export_query_traces([_query_trace()], tmp_path / "wire.jsonl")
        report = report_from_trace(load_trace(path))
        assert report.wire_latencies[0]["trace_id"] == "t1"
        assert "Wire latency breakdown" in report.render()
