"""Tests for broadcast-trace export and analysis."""

from __future__ import annotations

import json

import pytest

from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.tools.trace import export_trace, load_trace, summarise_trace


@pytest.fixture(scope="module")
def run_result():
    return run_simulation(small_setup())


class TestExportAndLoad:
    def test_round_trip(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        records = load_trace(path)
        kinds = [record["kind"] for record in records]
        assert kinds[0] == "meta"
        assert kinds.count("cycle") == len(run_result.cycles)
        assert kinds.count("client") == len(run_result.clients)

    def test_meta_fields(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        meta = load_trace(path)[0]
        assert meta["collection_bytes"] == run_result.collection_bytes
        assert meta["completed"] == run_result.completed

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "format": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad JSON"):
            load_trace(path)

    def test_missing_meta_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "cycle"}\n')
        with pytest.raises(ValueError, match="meta"):
            load_trace(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "format": 42}\n')
        with pytest.raises(ValueError, match="format"):
            load_trace(path)


class TestSummarise:
    def test_matches_result_aggregates(self, tmp_path, run_result):
        """Trace-side aggregation must agree with the simulator's own."""
        path = export_trace(run_result, tmp_path / "run.jsonl")
        summary = summarise_trace(load_trace(path))
        assert summary.cycles == len(run_result.cycles)
        assert summary.clients == len(run_result.clients)
        assert summary.lookup_mean("two-tier") == pytest.approx(
            run_result.mean_index_lookup_bytes("two-tier")
        )
        assert summary.lookup_mean("one-tier") == pytest.approx(
            run_result.mean_index_lookup_bytes("one-tier")
        )
        assert summary.mean_pci_bytes == pytest.approx(run_result.mean_pci_bytes())

    def test_unknown_protocol_lookup(self, tmp_path, run_result):
        path = export_trace(run_result, tmp_path / "run.jsonl")
        summary = summarise_trace(load_trace(path))
        assert summary.lookup_mean("no-such-protocol") == 0.0
