"""Tests for collection/workload persistence."""

from __future__ import annotations

import json

import pytest

from repro.tools.persist import (
    JournalEntry,
    QueryJournal,
    load_collection,
    load_journal,
    load_workload,
    save_collection,
    save_workload,
)
from repro.xpath.parser import parse_query


class TestCollectionPersistence:
    def test_round_trip(self, tmp_path, nitf_docs):
        subset = nitf_docs[:6]
        save_collection(subset, tmp_path / "coll")
        loaded = load_collection(tmp_path / "coll")
        assert len(loaded) == len(subset)
        for original, restored in zip(subset, loaded):
            assert restored.doc_id == original.doc_id
            assert restored.root.structurally_equal(original.root)

    def test_sizes_preserved(self, tmp_path, nitf_docs):
        subset = nitf_docs[:3]
        save_collection(subset, tmp_path / "coll")
        loaded = load_collection(tmp_path / "coll")
        for original, restored in zip(subset, loaded):
            assert restored.size_bytes == original.size_bytes

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_collection([], tmp_path / "coll")

    def test_missing_manifest(self, tmp_path):
        (tmp_path / "coll").mkdir()
        with pytest.raises(FileNotFoundError):
            load_collection(tmp_path / "coll")

    def test_bad_format_version(self, tmp_path, nitf_docs):
        directory = save_collection(nitf_docs[:1], tmp_path / "coll")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            load_collection(directory)

    def test_duplicate_ids_rejected(self, tmp_path, nitf_docs):
        directory = save_collection(nitf_docs[:2], tmp_path / "coll")
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["documents"][1]["doc_id"] = manifest["documents"][0]["doc_id"]
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="repeats"):
            load_collection(directory)

    def test_loaded_collection_drives_the_pipeline(self, tmp_path, nitf_docs):
        """Persistence is useful only if a loaded collection behaves
        exactly like the original one end to end."""
        from repro.broadcast.server import BroadcastServer, DocumentStore
        from repro.xpath.generator import generate_workload

        subset = nitf_docs[:10]
        save_collection(subset, tmp_path / "coll")
        loaded = load_collection(tmp_path / "coll")
        queries = generate_workload(subset, 5, seed=3)
        original_server = BroadcastServer(DocumentStore(subset))
        loaded_server = BroadcastServer(DocumentStore(loaded))
        for query in queries:
            assert original_server.resolve(query) == loaded_server.resolve(query)


class TestDaemonBoot:
    """The persisted artifacts are exactly what ``repro serve`` loads at
    startup: a saved collection plus a saved workload must boot a live
    daemon whose broadcast equals one built from the originals."""

    def test_daemon_boots_from_persisted_artifacts(
        self, tmp_path, nitf_docs, nitf_queries
    ):
        import asyncio

        from repro.broadcast.program import program_signature
        from repro.broadcast.server import DocumentStore
        from repro.net import BroadcastDaemon, DaemonConfig
        from repro.sim.config import small_setup
        from repro.sim.simulation import make_server

        subset = nitf_docs[:12]
        queries = nitf_queries[:6]
        save_collection(subset, tmp_path / "coll")
        save_workload(queries, tmp_path / "workload.txt")
        loaded_docs = load_collection(tmp_path / "coll")
        loaded_queries = load_workload(tmp_path / "workload.txt")
        config = small_setup(document_count=12)

        async def boot():
            daemon = BroadcastDaemon(
                DocumentStore(loaded_docs, config.size_model),
                config,
                DaemonConfig(autostart=False),
            )
            await daemon.start()
            try:
                return daemon.preload(loaded_queries), daemon.server
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        admitted, loaded_server = asyncio.run(asyncio.wait_for(boot(), 60))

        # Same admissions and a byte-identical first cycle as a server
        # fed the in-memory originals.
        reference = make_server(config, DocumentStore(subset, config.size_model))
        expected = 0
        for query in queries:
            try:
                reference.submit(query, 0)
            except ValueError:
                continue
            expected += 1
        assert admitted == expected
        assert admitted >= 1
        assert program_signature(loaded_server.build_cycle()) == program_signature(
            reference.build_cycle()
        )


class TestWorkloadPersistence:
    def test_round_trip(self, tmp_path, nitf_queries):
        path = save_workload(nitf_queries, tmp_path / "workload.txt")
        loaded = load_workload(path)
        assert [str(q) for q in loaded] == [str(q) for q in nitf_queries]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("# header\n\n/a/b\n  \n//c\n")
        loaded = load_workload(path)
        assert [str(q) for q in loaded] == ["/a/b", "//c"]

    def test_predicates_survive(self, tmp_path):
        queries = [parse_query('/a/b[@id="7"][c]')]
        path = save_workload(queries, tmp_path / "w.txt")
        assert [str(q) for q in load_workload(path)] == [str(queries[0])]

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("/a/b\nnot-a-query\n")
        with pytest.raises(ValueError, match=":2:"):
            load_workload(path)


class TestQueryJournal:
    """The write-ahead journal behind the daemon's crash-resume path."""

    def _journal(self, tmp_path) -> QueryJournal:
        return QueryJournal(tmp_path / "shard.journal")

    def test_admit_done_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        journal.record_admit(1, "//nitf", 0, client_key=7)
        journal.record_admit(2, "//head", 40, client_key=8)
        journal.record_done(1)
        journal.close()
        state = load_journal(journal.path)
        assert [e.query_id for e in state.admits] == [1, 2]
        assert state.done_ids == [1]
        assert [e.query_id for e in state.outstanding] == [2]
        assert state.outstanding[0].query == "//head"
        assert state.outstanding[0].arrival == 40
        assert state.outstanding[0].client_key == 8
        assert not state.torn_tail

    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_journal(tmp_path / "never-written.journal")
        assert state.admits == [] and state.outstanding == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        journal.record_admit(1, "//nitf", 0)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as f:
            f.write('{"kind": "admit", "query_id": 2, "qu')  # killed mid-write
        state = load_journal(journal.path)
        assert state.torn_tail
        assert [e.query_id for e in state.admits] == [1]

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        journal.record_admit(1, "//nitf", 0)
        journal.close()
        text = journal.path.read_text()
        lines = text.splitlines()
        lines.insert(1, "garbage not json")
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt record"):
            load_journal(journal.path)

    def test_compact_then_reopen_starts_fresh_epoch(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        journal.record_admit(1, "//nitf", 0, client_key=7)
        journal.record_admit(2, "//head", 40, client_key=8)
        journal.record_done(1)
        journal.close()
        outstanding = load_journal(journal.path).outstanding

        fresh = QueryJournal(journal.path)
        fresh.compact(outstanding, epoch=1)
        fresh.open()
        for i, entry in enumerate(outstanding):
            fresh.record_admit(
                10 + i, entry.query, entry.arrival,
                client_key=entry.client_key, epoch=1,
            )
        fresh.record_done(10)
        fresh.close()
        state = load_journal(journal.path)
        assert state.resumes == 1
        # the compaction cleared pre-crash admits; only epoch-1 remain
        assert [e.epoch for e in state.admits] == [1]
        assert state.outstanding == []

    def test_compact_after_open_refused(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        with pytest.raises(RuntimeError, match="compact before open"):
            journal.compact([], epoch=1)
        journal.close()

    def test_append_requires_open(self, tmp_path):
        journal = self._journal(tmp_path)
        with pytest.raises(RuntimeError, match="not open"):
            journal.record_done(1)

    def test_admit_counts_span_epochs(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.open()
        journal.record_admit(1, "//nitf", 0, client_key=7)
        journal.record_admit(2, "//nitf", 0, client_key=7, epoch=1)
        journal.close()
        counts = load_journal(journal.path).admit_counts()
        assert counts[(7, "//nitf")] == 2

    def test_entries_are_frozen(self):
        entry = JournalEntry(1, "//a", 0)
        with pytest.raises(Exception):
            entry.query_id = 2  # type: ignore[misc]
