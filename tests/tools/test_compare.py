"""Tests for trace regression comparison."""

from __future__ import annotations

import pytest

from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.tools.compare import compare_traces
from repro.tools.trace import export_trace


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    directory = tmp_path_factory.mktemp("traces")
    baseline = run_simulation(small_setup())
    export_trace(baseline, directory / "before.jsonl")
    # "After": a run with half the cycle capacity -- more cycles, more
    # offset-list reads, a genuine (synthetic) regression.
    config = small_setup()
    worse = run_simulation(config.with_(cycle_data_capacity=config.cycle_data_capacity // 2))
    export_trace(worse, directory / "after.jsonl")
    return directory


class TestCompareTraces:
    def test_identical_traces_have_zero_drift(self, traces):
        comparison = compare_traces(traces / "before.jsonl", traces / "before.jsonl")
        assert all(d.relative_change == 0 for d in comparison.drifts)
        assert comparison.regressions() == []

    def test_capacity_regression_detected(self, traces):
        comparison = compare_traces(traces / "before.jsonl", traces / "after.jsonl")
        flagged = {d.metric for d in comparison.regressions(tolerance=0.10)}
        assert "cycles" in flagged or "two-tier cycles/query" in flagged

    def test_drift_lookup(self, traces):
        comparison = compare_traces(traces / "before.jsonl", traces / "after.jsonl")
        drift = comparison.drift("cycles")
        assert drift.after > drift.before
        with pytest.raises(KeyError):
            comparison.drift("no-such-metric")

    def test_report_renders(self, traces):
        comparison = compare_traces(traces / "before.jsonl", traces / "after.jsonl")
        text = comparison.report()
        assert "Trace comparison" in text
        assert "two-tier lookup bytes" in text

    def test_improvements_not_flagged(self, traces):
        # Swap directions: going from the worse run to the better one
        # must flag nothing.
        comparison = compare_traces(traces / "after.jsonl", traces / "before.jsonl")
        assert comparison.regressions(tolerance=0.10) == []
