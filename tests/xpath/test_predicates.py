"""Tests for the predicate extension (parser, evaluator, engine)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.filtering.yfilter import YFilterEngine
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.ast import (
    AttributePredicate,
    Axis,
    PathPredicate,
    Step,
    XPathQuery,
)
from repro.xpath.evaluator import (
    evaluate_on_document,
    matching_documents,
    matching_elements,
    predicate_holds,
)
from repro.xpath.parser import XPathSyntaxError, parse_query
from tests.strategies import document_collections


def sample_doc() -> XMLDocument:
    return XMLDocument(
        0,
        build_element(
            "a",
            build_element(
                "b",
                build_element("c", build_element("d")),
                id="first",
                kind="x",
            ),
            build_element("b", build_element("e"), id="second"),
            build_element("b"),
        ),
    )


class TestAst:
    def test_attribute_predicate_str(self):
        assert str(AttributePredicate("id")) == "[@id]"
        assert str(AttributePredicate("id", "7")) == '[@id="7"]'

    def test_path_predicate_str(self):
        child = PathPredicate((Step(Axis.CHILD, "c"), Step(Axis.CHILD, "d")))
        assert str(child) == "[c/d]"
        desc = PathPredicate((Step(Axis.DESCENDANT, "d"),))
        assert str(desc) == "[.//d]"

    def test_nested_predicates_rejected(self):
        inner = Step(Axis.CHILD, "c", (AttributePredicate("x"),))
        with pytest.raises(ValueError):
            PathPredicate((inner,))

    def test_structural_relaxation(self):
        query = parse_query('/a/b[@id="7"][c]')
        relaxed = query.structural_relaxation()
        assert not relaxed.has_predicates()
        assert str(relaxed) == "/a/b"
        assert query.has_predicates()

    def test_matches_path_rejects_predicates(self):
        with pytest.raises(ValueError):
            parse_query("/a[@x]").matches_path(("a",))


class TestParser:
    @pytest.mark.parametrize(
        "text",
        [
            "/a/b[@id]",
            '/a/b[@id="7"]',
            "/a/b[c]",
            "/a/b[c/d]",
            "/a/b[.//d]",
            '/a/b[@id="7"][c//d]',
            "//b[@kind][e]",
        ],
    )
    def test_round_trip(self, text):
        assert str(parse_query(text)) == text.replace("'", '"')

    def test_single_quotes_accepted(self):
        query = parse_query("/a/b[@id='7']")
        assert query.steps[1].predicates[0] == AttributePredicate("id", "7")

    @pytest.mark.parametrize(
        "bad",
        [
            "/a/b[]",
            "/a/b[@]",
            "/a/b[@x=7]",
            "/a/b[c",
            "/a/b[/c]",
            "/a/b[c[d]]",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_query(bad)


class TestEvaluator:
    def test_attribute_existence(self):
        doc = sample_doc()
        matches = matching_elements(parse_query("/a/b[@id]"), doc)
        assert len(matches) == 2

    def test_attribute_value(self):
        doc = sample_doc()
        matches = matching_elements(parse_query('/a/b[@id="second"]'), doc)
        assert len(matches) == 1
        assert matches[0].attributes["id"] == "second"

    def test_path_predicate_child(self):
        doc = sample_doc()
        matches = matching_elements(parse_query("/a/b[c]"), doc)
        assert len(matches) == 1

    def test_path_predicate_descendant(self):
        doc = sample_doc()
        matches = matching_elements(parse_query("/a/b[.//d]"), doc)
        assert len(matches) == 1
        assert matches[0].attributes.get("id") == "first"

    def test_path_predicate_multi_step(self):
        doc = sample_doc()
        assert evaluate_on_document(parse_query("/a/b[c/d]"), doc)
        assert not evaluate_on_document(parse_query("/a/b[c/e]"), doc)

    def test_conjunction(self):
        doc = sample_doc()
        assert evaluate_on_document(parse_query('/a/b[@id="first"][c]'), doc)
        assert not evaluate_on_document(parse_query('/a/b[@id="second"][c]'), doc)

    def test_predicate_on_intermediate_step(self):
        doc = sample_doc()
        matches = matching_elements(parse_query("/a/b[@kind]/c/d"), doc)
        assert len(matches) == 1
        assert not matching_elements(parse_query('/a/b[@id="second"]/c'), doc)

    def test_predicate_helpers(self):
        doc = sample_doc()
        first_b = doc.root.children[0]
        assert predicate_holds(first_b, AttributePredicate("id"))
        assert not predicate_holds(first_b, AttributePredicate("nope"))
        assert predicate_holds(
            first_b, PathPredicate((Step(Axis.DESCENDANT, "d"),))
        )


class TestEngineTwoPhase:
    def test_engine_matches_evaluator_on_predicates(self):
        docs = [sample_doc()]
        queries = [
            parse_query("/a/b[c]"),
            parse_query('/a/b[@id="second"]'),
            parse_query("/a/b"),
            parse_query("/a/b[.//zzz]"),
        ]
        engine = YFilterEngine.from_queries(queries)
        result = engine.filter_collection(docs)
        for index, query in enumerate(queries):
            expected = matching_documents(query, docs)
            assert result.docs_per_query[index] == expected, str(query)

    def test_streaming_mode_verifies_too(self):
        docs = [sample_doc()]
        queries = [parse_query("/a/b[.//zzz]")]
        engine = YFilterEngine.from_queries(queries)
        assert engine.filter_collection(docs, streaming=True).docs_per_query[0] == set()

    def test_structural_superset(self, nitf_docs):
        """Phase one (relaxation) can only over-approximate."""
        predicated = parse_query("/nitf/head/title[@nope]")
        relaxed = predicated.structural_relaxation()
        full = matching_documents(predicated, nitf_docs)
        structural = matching_documents(relaxed, nitf_docs)
        assert full <= structural

    @given(document_collections())
    def test_attribute_predicates_differential(self, docs):
        """Engine == evaluator for predicated queries on random trees.

        Generated trees carry no attributes, so attribute predicates
        must match nothing while their relaxations may match plenty --
        a sharp test of the verification phase."""
        queries = [
            parse_query("/a[@missing]"),
            parse_query("//b[@x='1']"),
            parse_query("//a[b]"),
        ]
        engine = YFilterEngine.from_queries(queries)
        result = engine.filter_collection(docs)
        for index, query in enumerate(queries):
            assert result.docs_per_query[index] == matching_documents(query, docs)


class TestBroadcastRejection:
    def test_server_rejects_predicate_queries(self, nitf_store):
        from repro.broadcast.server import BroadcastServer

        server = BroadcastServer(nitf_store)
        with pytest.raises(ValueError, match="purely structural"):
            server.submit(parse_query("/nitf/head[@x]"), 0)
