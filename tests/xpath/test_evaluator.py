"""Unit tests for the naive reference evaluator."""

from __future__ import annotations

from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.evaluator import (
    evaluate_on_document,
    matching_documents,
    matching_elements,
    result_table,
)
from repro.xpath.parser import parse_query


def paper_documents():
    """The reconstruction of the running example's five documents.

    Built to satisfy the paper's Figure 2(b) query/result table exactly;
    see tests/integration/test_paper_example.py for the full cross-check.
    """
    d1 = XMLDocument(0, build_element("a", build_element("b", build_element("a"))))
    d2 = XMLDocument(
        1,
        build_element(
            "a",
            build_element("b", build_element("a"), build_element("c")),
            build_element("c", build_element("b")),
        ),
    )
    d3 = XMLDocument(2, build_element("a", build_element("b"), build_element("c")))
    d4 = XMLDocument(3, build_element("a", build_element("c", build_element("a"))))
    d5 = XMLDocument(
        4,
        build_element("a", build_element("b"), build_element("c", build_element("a"))),
    )
    return [d1, d2, d3, d4, d5]


class TestEvaluateOnDocument:
    def test_positive(self):
        docs = paper_documents()
        assert evaluate_on_document(parse_query("/a/b/a"), docs[0])

    def test_negative(self):
        docs = paper_documents()
        assert not evaluate_on_document(parse_query("/a/c"), docs[0])

    def test_descendant(self):
        docs = paper_documents()
        assert evaluate_on_document(parse_query("/a//c"), docs[1])


class TestMatchingElements:
    def test_returns_every_matching_element(self):
        doc = XMLDocument(
            0, build_element("a", build_element("b"), build_element("b"))
        )
        matches = matching_elements(parse_query("/a/b"), doc)
        assert len(matches) == 2
        assert all(element.tag == "b" for element in matches)

    def test_empty_when_no_match(self):
        doc = XMLDocument(0, build_element("a"))
        assert matching_elements(parse_query("/a/x"), doc) == []


class TestMatchingDocuments:
    def test_paper_table(self):
        """The Figure 2(b) result table, query by query."""
        docs = paper_documents()
        expected = {
            "/a/b/a": {0, 1},
            "/a/c/a": {3, 4},
            "/a//c": {1, 2, 3, 4},
            "/a/b": {0, 1, 2, 4},
            "/a/c/*": {1, 3, 4},
        }
        for text, result in expected.items():
            assert matching_documents(parse_query(text), docs) == result, text


class TestResultTable:
    def test_matches_per_query_evaluation(self):
        docs = paper_documents()
        queries = [parse_query(t) for t in ("/a/b/a", "/a//c", "/a/c/*")]
        table = result_table(queries, docs)
        for query in queries:
            assert table[query] == matching_documents(query, docs)

    def test_duplicate_queries_share_entry(self):
        docs = paper_documents()
        queries = [parse_query("/a/c/a"), parse_query("/a/c/a")]
        table = result_table(queries, docs)
        assert len(table) == 1  # hashable queries deduplicate
        assert table[queries[0]] == {3, 4}
