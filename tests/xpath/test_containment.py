"""Tests for exact query containment on the linear fragment."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xpath.containment import analyse_workload, contains, equivalent
from repro.xpath.parser import parse_query
from tests.strategies import label_paths, queries


def q(text: str):
    return parse_query(text)


class TestContains:
    @pytest.mark.parametrize(
        "big,small",
        [
            ("/a", "/a"),
            ("//a", "/a"),
            ("//a", "/b/a"),
            ("/*", "/a"),
            ("//*", "/a/b/c"),
            ("/a//c", "/a/b/c"),
            ("/a//c", "/a/c"),
            ("/a/*/c", "/a/b/c"),
            ("//b//c", "/a/b/x/c"),
            ("/a//b", "/a//x/b"),
            ("//c", "/a//c"),
        ],
    )
    def test_positive(self, big, small):
        assert contains(q(big), q(small)), f"{big} should contain {small}"

    @pytest.mark.parametrize(
        "big,small",
        [
            ("/a", "/b"),
            ("/a", "//a"),  # //a also matches deeper paths
            ("/a/b", "/a"),
            ("/a/b/c", "/a//c"),
            ("/a/*/c", "/a/c"),  # * consumes exactly one label
            ("/*", "//*"),
            ("/a//b/c", "/a//c"),
            ("//b/c", "//c"),
        ],
    )
    def test_negative(self, big, small):
        assert not contains(q(big), q(small)), f"{big} should NOT contain {small}"

    def test_wildcard_vs_fresh_labels(self):
        # The container must cover labels it never mentions.
        assert contains(q("/a/*"), q("/a/zzz"))
        assert not contains(q("/a/b"), q("/a/*"))

    def test_self_containment_with_descendant(self):
        assert contains(q("//a//b"), q("//a//b"))


class TestEquivalent:
    def test_trivial(self):
        assert equivalent(q("/a/b"), q("/a/b"))

    def test_redundant_descendant(self):
        # //a//a vs //a/... not equivalent; but /a and /a are; also
        # //*//a equals //a: any path ending in a has >= 1 label before?
        # No: path ("a",) matches //a but not //*//a.
        assert not equivalent(q("//*//a"), q("//a"))

    def test_star_chain_vs_depth(self):
        assert not equivalent(q("/*/*"), q("/*"))


class TestContainmentProperties:
    @given(queries(max_steps=4), queries(max_steps=4), label_paths)
    def test_soundness_on_random_paths(self, a, b, path):
        """If contains(a, b), then every path matching b matches a."""
        if contains(a, b) and b.matches_path(path):
            assert a.matches_path(path), (str(a), str(b), path)

    @given(queries(max_steps=4))
    def test_reflexive(self, query):
        assert contains(query, query)

    @given(queries(max_steps=3), queries(max_steps=3), queries(max_steps=3))
    def test_transitive(self, a, b, c):
        if contains(a, b) and contains(b, c):
            assert contains(a, c)

    @given(queries(max_steps=4), label_paths)
    def test_wild_root_contains_everything_it_should(self, query, path):
        """//* contains every query (every non-empty path matches it)."""
        universal = q("//*")
        assert contains(universal, query)


class TestAnalyseWorkload:
    def test_duplicates_detected(self):
        workload = [q("/a/b"), q("/a/b"), q("/a/c")]
        analysis = analyse_workload(workload)
        assert analysis.duplicates_of == {1: 0}
        assert set(analysis.effective) == {0, 2}

    def test_subsumption_detected(self):
        workload = [q("//c"), q("/a/b/c"), q("/a/c")]
        analysis = analyse_workload(workload)
        assert analysis.subsumed_by.get(1) == 0
        assert analysis.subsumed_by.get(2) == 0
        assert analysis.effective == (0,)

    def test_equivalent_queries_not_mutually_removed(self):
        # Two textually different but equivalent queries: strict
        # subsumption is required, so both survive (string dedup already
        # handles the identical case).
        workload = [q("/a"), q("/a")]
        analysis = analyse_workload(workload)
        assert analysis.effective == (0,)
        assert analysis.duplicates_of == {1: 0}

    def test_redundant_fraction(self):
        workload = [q("//*"), q("/a"), q("/a"), q("/b/c")]
        analysis = analyse_workload(workload)
        # q1 subsumed by q0, q2 duplicate of q1, q3 subsumed by q0.
        assert analysis.redundant_fraction == pytest.approx(3 / 4)

    def test_predicated_queries_kept(self):
        workload = [q("//b"), q("/a/b[@x]")]
        analysis = analyse_workload(workload)
        assert 1 in analysis.effective

    def test_empty_workload(self):
        analysis = analyse_workload([])
        assert analysis.total == 0
        assert analysis.redundant_fraction == 0.0

    def test_realistic_workload_reduction(self, nitf_docs):
        """On a generated workload, the effective set plus redundancy maps
        account for every query, and pruning with only the effective set
        keeps every original query transparent."""
        from repro.index.ci import build_full_ci
        from repro.index.pruning import prune_to_pci
        from repro.xpath.generator import generate_workload

        workload = generate_workload(nitf_docs, 30, seed=9)
        analysis = analyse_workload(workload)
        covered = (
            set(analysis.effective)
            | set(analysis.subsumed_by)
            | set(analysis.duplicates_of)
        )
        assert covered == set(range(len(workload)))

        ci = build_full_ci(nitf_docs)
        effective_queries = [workload[i] for i in analysis.effective]
        pci, _ = prune_to_pci(ci, effective_queries)
        for query in workload:
            assert set(pci.lookup(query).doc_ids) == set(
                ci.lookup(query).doc_ids
            ), str(query)
