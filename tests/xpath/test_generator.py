"""Unit tests for the synthetic query workload generator."""

from __future__ import annotations

import pytest

from repro.xpath.ast import Axis, WILDCARD
from repro.xpath.evaluator import evaluate_on_document
from repro.xpath.generator import (
    QueryGenerator,
    QueryWorkloadConfig,
    generate_workload,
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wildcard_descendant_prob": -0.1},
            {"wildcard_descendant_prob": 1.1},
            {"min_depth": 0},
            {"min_depth": 5, "max_depth": 3},
            {"depth_mode": "bogus"},
            {"zipf_theta": -1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            QueryWorkloadConfig(**kwargs)

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            QueryGenerator([], QueryWorkloadConfig())


class TestGeneration:
    def test_deterministic(self, nitf_docs):
        first = generate_workload(nitf_docs, 10, seed=1)
        second = generate_workload(nitf_docs, 10, seed=1)
        assert [str(q) for q in first] == [str(q) for q in second]

    def test_depth_bounded(self, nitf_docs):
        for d_q in (2, 5, 8):
            queries = generate_workload(nitf_docs, 30, seed=2, max_depth=d_q)
            assert all(q.depth <= d_q for q in queries)

    def test_non_empty_results_guaranteed(self, nitf_docs):
        """The paper's Section 2.1 assumption, and the generator contract."""
        queries = generate_workload(nitf_docs, 40, seed=3, wildcard_descendant_prob=0.3)
        for query in queries:
            assert any(evaluate_on_document(query, doc) for doc in nitf_docs), str(
                query
            )

    def test_p_zero_generates_plain_child_paths(self, nitf_docs):
        queries = generate_workload(nitf_docs, 30, seed=4, wildcard_descendant_prob=0.0)
        for query in queries:
            assert not query.has_wildcard()
            assert not query.has_descendant_axis()

    def test_p_one_generates_many_mutations(self, nitf_docs):
        queries = generate_workload(nitf_docs, 30, seed=5, wildcard_descendant_prob=1.0)
        mutated = sum(
            1 for q in queries if q.has_wildcard() or q.has_descendant_axis()
        )
        assert mutated == len(queries)

    def test_never_all_wildcards(self, nitf_docs):
        queries = generate_workload(nitf_docs, 50, seed=6, wildcard_descendant_prob=1.0)
        for query in queries:
            assert any(step.test != WILDCARD for step in query.steps)

    def test_first_step_roots_at_document_root(self, nitf_docs):
        # Generalised or not, step one derives from the document root label.
        queries = generate_workload(nitf_docs, 20, seed=7, wildcard_descendant_prob=0.0)
        assert all(q.steps[0].test == "nitf" for q in queries)

    def test_leafwalk_concentrates_depth(self, nitf_docs):
        """Leafwalk queries sit near min(document depth, D_Q) -- the property
        behind the paper's D_Q selectivity trend."""
        queries = generate_workload(nitf_docs, 60, seed=8, max_depth=10)
        mean_depth = sum(q.depth for q in queries) / len(queries)
        assert mean_depth > 4.0

    def test_uniform_mode_spreads_depth(self, nitf_docs):
        config = QueryWorkloadConfig(seed=9, depth_mode="uniform", max_depth=8)
        queries = QueryGenerator(nitf_docs, config).generate_many(80)
        depths = {q.depth for q in queries}
        assert 1 in depths or 2 in depths  # shallow queries exist
        assert max(depths) <= 8

    def test_zipf_skew_narrows_sources(self, nitf_docs):
        uniform = QueryGenerator(nitf_docs, QueryWorkloadConfig(seed=10))
        skewed = QueryGenerator(
            nitf_docs, QueryWorkloadConfig(seed=10, zipf_theta=2.0)
        )
        uniform_qs = {str(q) for q in uniform.generate_many(60)}
        skewed_qs = {str(q) for q in skewed.generate_many(60)}
        # Heavier skew samples fewer distinct source documents, hence fewer
        # distinct query strings.
        assert len(skewed_qs) <= len(uniform_qs)

    def test_negative_count_rejected(self, nitf_docs):
        with pytest.raises(ValueError):
            QueryGenerator(nitf_docs, QueryWorkloadConfig()).generate_many(-1)
