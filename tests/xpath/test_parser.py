"""Unit and property tests for the XPath string parser."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.xpath.ast import Axis, WILDCARD
from repro.xpath.parser import XPathSyntaxError, parse_query
from tests.strategies import queries


class TestParseQuery:
    def test_single_child_step(self):
        query = parse_query("/a")
        assert query.depth == 1
        assert query.steps[0].axis is Axis.CHILD
        assert query.steps[0].test == "a"

    def test_descendant_step(self):
        query = parse_query("//a")
        assert query.steps[0].axis is Axis.DESCENDANT

    def test_wildcard(self):
        assert parse_query("/*").steps[0].test == WILDCARD

    def test_paper_queries(self):
        # The six queries of the running example (Figure 2(b)).
        for text in ("/a/b/a", "/a/c/a", "/a//c", "/a/b", "/a/c/*", "/a/c/a"):
            assert str(parse_query(text)) == text

    def test_mixed_axes(self):
        query = parse_query("/a//b/c//*")
        assert [step.axis for step in query.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT,
            Axis.CHILD,
            Axis.DESCENDANT,
        ]
        assert [step.test for step in query.steps] == ["a", "b", "c", WILDCARD]

    def test_whitespace_tolerated_around(self):
        assert str(parse_query("  /a/b ")) == "/a/b"

    def test_hyphenated_and_dotted_labels(self):
        query = parse_query("/body-content/doc.copyright")
        assert query.steps[0].test == "body-content"
        assert query.steps[1].test == "doc.copyright"

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "a/b", "/a//", "/", "//", "/a/", "/a b", "/a/&"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_query(bad)

    @given(queries())
    def test_str_round_trip(self, query):
        assert parse_query(str(query)) == query
