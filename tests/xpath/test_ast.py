"""Unit and property tests for the XPath query model."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.xpath.ast import (
    Axis,
    Step,
    WILDCARD,
    XPathQuery,
    distinct_labels,
    query_set_depth,
)
from repro.xpath.parser import parse_query
from tests.strategies import label_paths, queries


class TestStep:
    def test_empty_test_rejected(self):
        with pytest.raises(ValueError):
            Step(Axis.CHILD, "")

    def test_test_matches_label(self):
        assert Step(Axis.CHILD, "a").test_matches("a")
        assert not Step(Axis.CHILD, "a").test_matches("b")

    def test_wildcard_matches_all(self):
        step = Step(Axis.DESCENDANT, WILDCARD)
        assert step.test_matches("anything")

    def test_str(self):
        assert str(Step(Axis.CHILD, "a")) == "/a"
        assert str(Step(Axis.DESCENDANT, "*")) == "//*"


class TestQueryBasics:
    def test_empty_steps_rejected(self):
        with pytest.raises(ValueError):
            XPathQuery(())

    def test_depth(self):
        assert parse_query("/a/b/c").depth == 3

    def test_predicates(self):
        query = parse_query("/a//b/*")
        assert query.has_wildcard()
        assert query.has_descendant_axis()
        assert not parse_query("/a/b").has_wildcard()
        assert not parse_query("/a/b").has_descendant_axis()

    def test_hashable(self):
        assert parse_query("/a/b") == parse_query("/a/b")
        assert len({parse_query("/a/b"), parse_query("/a/b")}) == 1


class TestMatchesPath:
    """Semantics against the paper's running example (Figure 2)."""

    @pytest.mark.parametrize(
        "query,path,expected",
        [
            # Exact child chains, anchored at both ends.
            ("/a/b/a", ("a", "b", "a"), True),
            ("/a/b/a", ("a", "b"), False),
            ("/a/b/a", ("a", "b", "a", "c"), False),
            ("/a/b", ("a", "b"), True),
            ("/a/b", ("b",), False),
            # Descendant axis skips arbitrarily many labels.
            ("/a//c", ("a", "c"), True),
            ("/a//c", ("a", "b", "c"), True),
            ("/a//c", ("a", "b", "x", "c"), True),
            ("/a//c", ("a", "b"), False),
            ("/a//c", ("c",), False),
            ("//c", ("a", "b", "c"), True),
            ("//c", ("c",), True),
            # Wildcards match exactly one label.
            ("/a/c/*", ("a", "c", "b"), True),
            ("/a/c/*", ("a", "c"), False),
            ("/a/c/*", ("a", "c", "b", "d"), False),
            ("/*", ("a",), True),
            ("/*/*", ("a", "b"), True),
            # Combination.
            ("/a//*/c", ("a", "x", "c"), True),
            ("/a//*/c", ("a", "c"), False),
        ],
    )
    def test_cases(self, query, path, expected):
        assert parse_query(query).matches_path(path) is expected

    def test_matches_any_path(self):
        query = parse_query("/a/b")
        assert query.matches_any_path([("x",), ("a", "b")])
        assert not query.matches_any_path([("x",), ("a",)])

    @given(label_paths)
    def test_identity_query_matches_its_path(self, path):
        query = XPathQuery.from_steps(Step(Axis.CHILD, label) for label in path)
        assert query.matches_path(path)

    @given(label_paths)
    def test_descendant_generalisation_preserves_match(self, path):
        child_query = XPathQuery.from_steps(
            Step(Axis.CHILD, label) for label in path
        )
        desc_query = XPathQuery.from_steps(
            Step(Axis.DESCENDANT, label) for label in path
        )
        assert child_query.matches_path(path)
        assert desc_query.matches_path(path)

    @given(label_paths)
    def test_wildcard_generalisation_preserves_match(self, path):
        query = XPathQuery.from_steps(
            Step(Axis.CHILD, WILDCARD) for _ in path
        )
        assert query.matches_path(path)

    @given(queries(), label_paths)
    def test_match_implies_viable_prefix_of_itself(self, query, path):
        if query.matches_path(path):
            assert query.is_viable_prefix(path)


class TestViablePrefix:
    @pytest.mark.parametrize(
        "query,path,expected",
        [
            ("/a/b/c", ("a",), True),
            ("/a/b/c", ("a", "b"), True),
            ("/a/b/c", ("a", "b", "c"), True),
            ("/a/b/c", ("a", "x"), False),
            ("/a/b/c", ("a", "b", "c", "d"), False),
            ("/a//c", ("a", "x", "y"), True),  # // keeps everything viable
            ("/a//c", ("b",), False),
            ("/a/*", ("a",), True),
            ("/a/*", ("a", "anything"), True),
        ],
    )
    def test_cases(self, query, path, expected):
        assert parse_query(query).is_viable_prefix(path) is expected

    @given(queries(), label_paths)
    def test_prefixes_of_matches_are_viable(self, query, path):
        if query.matches_path(path):
            for cut in range(1, len(path) + 1):
                assert query.is_viable_prefix(path[:cut])


class TestHelpers:
    def test_query_set_depth(self):
        qs = [parse_query("/a"), parse_query("/a/b/c")]
        assert query_set_depth(qs) == 3
        assert query_set_depth([]) == 0

    def test_distinct_labels_skips_wildcards(self):
        qs = [parse_query("/a/*"), parse_query("//b/a")]
        assert distinct_labels(qs) == ["a", "b"]
