"""Wall-clock hygiene: deterministic packages never *call* the clock.

The simulator's timeline is channel byte-time; a stray ``time.time()``
(or a fresh ``datetime.now()``) inside the deterministic core would
leak wall-clock into reproducible runs.  This sweep parses every module
of the deterministic packages and rejects direct *calls* to wall-clock
functions.  Passing a clock function around is fine -- injectable
defaults like ``BuildBudget.clock = time.perf_counter`` (a reference,
not a call) are the sanctioned pattern, and ``repro.net``/``repro.obs``
take their clocks via exactly that kind of injection
(:class:`repro.net.clock.ClockAdapter`, the registry's ``clock=``).
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent

#: Packages whose behaviour must be a pure function of their inputs.
DETERMINISTIC_PACKAGES = [
    "xmlkit",
    "xpath",
    "filtering",
    "dataguide",
    "index",
    "broadcast",
    "client",
    "sim",
    "control",
    "faults",
    "baselines",
    "analysis",
    "tools",
]

#: ``module attribute`` pairs that read the wall clock when called.
WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("time", "monotonic_ns"),
    ("time", "time_ns"),
    ("time", "perf_counter_ns"),
}


def _deterministic_modules():
    for package in DETERMINISTIC_PACKAGES:
        for path in sorted((SRC_ROOT / package).rglob("*.py")):
            yield path


def _wall_clock_calls(tree: ast.AST):
    """Direct ``time.<fn>()`` / ``datetime.now()`` / ``date.today()``
    call sites (references passed as values are deliberately allowed)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if isinstance(func.value, ast.Name):
            if (func.value.id, func.attr) in WALL_CLOCK_CALLS:
                yield node
            if func.value.id in ("datetime", "date") and func.attr in (
                "now",
                "utcnow",
                "today",
            ):
                yield node


@pytest.mark.parametrize(
    "path",
    list(_deterministic_modules()),
    ids=lambda p: str(p.relative_to(SRC_ROOT)),
)
def test_no_wall_clock_calls(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offenders = [
        f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
        for node in _wall_clock_calls(tree)
    ]
    assert not offenders, (
        "wall-clock call in a deterministic package (inject a clock "
        f"instead): {offenders}"
    )


def test_sweep_covers_the_deterministic_core():
    """The package list tracks reality: every repro subpackage is either
    swept or explicitly exempt (entry points and the layers whose whole
    point is real time / real IO)."""
    exempt = {
        "obs",  # spans time real phases; clock injectable for tests
        "net",  # live daemon; paced by an injectable ClockAdapter
        "experiments",  # figure runner prints elapsed wall time
    }
    packages = {
        child.name
        for child in SRC_ROOT.iterdir()
        if child.is_dir() and (child / "__init__.py").exists()
    }
    assert packages == set(DETERMINISTIC_PACKAGES) | exempt


def test_detector_catches_a_call():
    """The sweep is only trustworthy if the detector actually fires."""
    tree = ast.parse("import time\nstamp = time.time()\n")
    assert list(_wall_clock_calls(tree))
    tree = ast.parse("import time\nclock = time.perf_counter\n")
    assert not list(_wall_clock_calls(tree))


@pytest.mark.parametrize(
    "path",
    sorted((SRC_ROOT / "obs" / "telemetry").glob("*.py")),
    ids=lambda p: str(p.relative_to(SRC_ROOT)),
)
def test_telemetry_modules_are_clock_injected(path):
    """``repro.obs`` is exempt from the package sweep, but the telemetry
    plane is held to the stricter standard anyway: every timestamp it
    emits comes from an injected clock (``EventLog(clock=...)``,
    ``QueryTracer(clock)``), never from a direct wall-clock call -- that
    is what keeps telemetry-on runs byte-identical and replayable."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offenders = [
        f"{path.relative_to(SRC_ROOT)}:{node.lineno}"
        for node in _wall_clock_calls(tree)
    ]
    assert not offenders, (
        f"telemetry module calls the wall clock directly: {offenders}"
    )
