"""Shared fixtures for the whole test suite.

Collections are session-scoped: generating documents and their DataGuides
dominates test time otherwise.  Tests must never mutate fixture documents
(mutating tests build their own trees).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.broadcast.server import DocumentStore
from repro.xmlkit.generator import (
    GeneratorConfig,
    generate_collection,
    nasa_like_dtd,
    nitf_like_dtd,
)
from repro.xpath.generator import QueryGenerator, QueryWorkloadConfig

# Keep property tests snappy; invariants are also exercised at scale by
# the integration tests and benches.
settings.register_profile("repro", max_examples=50, deadline=None)
# CI runs derandomized so failures reproduce across reruns of the same
# commit, and prints the reproduction blob for local replay.
settings.register_profile(
    "ci", max_examples=50, deadline=None, derandomize=True, print_blob=True
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture(scope="session")
def nitf_docs():
    """60 NITF-like documents (shared, read-only)."""
    return generate_collection(nitf_like_dtd(), 60, seed=101)


@pytest.fixture(scope="session")
def nasa_docs():
    """40 NASA-like documents (shared, read-only)."""
    return generate_collection(nasa_like_dtd(), 40, seed=202)


@pytest.fixture(scope="session")
def mixed_docs(nitf_docs, nasa_docs):
    """A mixed-root collection (exercises the virtual-root machinery)."""
    renumbered = []
    next_id = 0
    for doc in list(nitf_docs[:10]) + list(nasa_docs[:10]):
        clone = type(doc)(doc_id=next_id, root=doc.root, name=doc.name)
        renumbered.append(clone)
        next_id += 1
    return renumbered


@pytest.fixture(scope="session")
def nitf_store(nitf_docs):
    return DocumentStore(nitf_docs)


@pytest.fixture(scope="session")
def nitf_queries(nitf_docs):
    """40 queries over the NITF collection (P=0.1, D_Q=10)."""
    return QueryGenerator(
        nitf_docs, QueryWorkloadConfig(seed=303)
    ).generate_many(40)
