"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.xmlkit.model
import repro.xpath.parser

MODULES = [
    repro.xmlkit.model,
    repro.xpath.parser,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its doctest examples"
    assert result.failed == 0
