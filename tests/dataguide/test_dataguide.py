"""Unit and property tests for per-document strong DataGuides."""

from __future__ import annotations

from hypothesis import given

from repro.dataguide.dataguide import build_dataguide
from repro.xmlkit.model import XMLDocument, build_element
from tests.strategies import xml_documents


def sample_doc() -> XMLDocument:
    # a(b(a, c), c(b)) -- the paper's d2.
    return XMLDocument(
        1,
        build_element(
            "a",
            build_element("b", build_element("a"), build_element("c")),
            build_element("c", build_element("b")),
        ),
    )


class TestBuildDataGuide:
    def test_every_distinct_path_once(self):
        guide = build_dataguide(sample_doc())
        assert sorted(guide.paths()) == sorted(
            [
                ("a",),
                ("a", "b"),
                ("a", "b", "a"),
                ("a", "b", "c"),
                ("a", "c"),
                ("a", "c", "b"),
            ]
        )

    def test_duplicate_paths_collapse(self):
        doc = XMLDocument(
            0, build_element("a", build_element("b"), build_element("b"))
        )
        guide = build_dataguide(doc)
        assert guide.node_count() == 2  # a, a/b

    def test_contains_path(self):
        guide = build_dataguide(sample_doc())
        assert guide.contains_path(("a", "b", "c"))
        assert not guide.contains_path(("a", "x"))
        assert not guide.contains_path(("b",))
        assert not guide.contains_path(())

    def test_leaf_occurrence_marks(self):
        guide = build_dataguide(sample_doc())
        # d2's childless elements sit at a/b/a, a/b/c and a/c/b -- exactly
        # the three places the paper says d2's pointer appears.
        leaf_paths = {
            path
            for node, path in guide.root.iter_with_paths()
            if node.is_leaf_occurrence
        }
        assert leaf_paths == {("a", "b", "a"), ("a", "b", "c"), ("a", "c", "b")}

    def test_internal_node_can_be_leaf_occurrence(self):
        # a(b, b(c)): one b is childless, the other is not; the guide node
        # (a,b) is both internal and a leaf occurrence.
        doc = XMLDocument(
            0,
            build_element(
                "a", build_element("b"), build_element("b", build_element("c"))
            ),
        )
        guide = build_dataguide(doc)
        node = guide.root.child("b")
        assert node is not None
        assert node.is_leaf_occurrence
        assert node.children

    def test_doc_id_recorded(self):
        assert build_dataguide(sample_doc()).doc_id == 1

    @given(xml_documents())
    def test_guide_paths_equal_document_distinct_paths(self, document):
        """The DataGuide invariant: every distinct label path exactly once."""
        guide = build_dataguide(document)
        assert sorted(guide.paths()) == sorted(document.distinct_label_paths())

    @given(xml_documents())
    def test_contains_path_agrees_with_document(self, document):
        guide = build_dataguide(document)
        for path in document.distinct_label_paths():
            assert guide.contains_path(path)

    @given(xml_documents())
    def test_leaf_occurrences_match_childless_elements(self, document):
        guide = build_dataguide(document)
        childless_paths = {
            path
            for element, path in document.root.iter_with_paths()
            if not element.children
        }
        marked = {
            path
            for node, path in guide.root.iter_with_paths()
            if node.is_leaf_occurrence
        }
        assert marked == childless_paths
