"""Unit and property tests for the combined (RoXSum) DataGuide."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.dataguide.dataguide import build_dataguide
from repro.dataguide.roxsum import CombinedDataGuide, build_combined_guide
from repro.xmlkit.model import XMLDocument, build_element
from repro.xmlkit.stats import path_frequencies
from tests.strategies import document_collections


@pytest.fixture()
def paper_docs():
    from tests.xpath.test_evaluator import paper_documents

    return paper_documents()


class TestBuildCombinedGuide:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_combined_guide([])

    def test_mismatched_guides_rejected(self, paper_docs):
        with pytest.raises(ValueError):
            build_combined_guide(paper_docs, guides=[build_dataguide(paper_docs[0])])

    def test_paper_running_example_structure(self, paper_docs):
        """Figure 3(b): the CI for d1..d5 has paths a, a/b, a/b/a, a/b/c,
        a/c, a/c/a, a/c/b (our reconstruction)."""
        guide = build_combined_guide(paper_docs)
        assert sorted(guide.paths()) == sorted(
            [
                ("a",),
                ("a", "b"),
                ("a", "b", "a"),
                ("a", "b", "c"),
                ("a", "c"),
                ("a", "c", "a"),
                ("a", "c", "b"),
            ]
        )
        assert not guide.virtual_root

    def test_paper_annotations(self, paper_docs):
        guide = build_combined_guide(paper_docs)
        node = guide.find(("a", "b", "a"))
        assert set(node.leaf_docs) == {0, 1}  # d1, d2 -- the paper's n4
        node_c = guide.find(("a", "c"))
        assert set(node_c.leaf_docs) == {2}  # d3's childless c -- n3

    def test_containing_docs_is_subtree_union(self, paper_docs):
        guide = build_combined_guide(paper_docs)
        # Documents containing path a/c: d2, d3, d4, d5.
        assert set(guide.docs_containing(("a", "c"))) == {1, 2, 3, 4}

    def test_docs_containing_missing_path(self, paper_docs):
        guide = build_combined_guide(paper_docs)
        assert guide.docs_containing(("a", "z"))== frozenset()
        assert guide.docs_containing(()) == frozenset()

    def test_doc_ids_recorded(self, paper_docs):
        guide = build_combined_guide(paper_docs)
        assert guide.doc_ids == frozenset(range(5))

    def test_invalidate_caches(self, paper_docs):
        guide = build_combined_guide(paper_docs)
        node = guide.find(("a", "c"))
        before = node.containing_docs()
        node.leaf_docs.add(99)
        guide.root.invalidate_caches()
        assert 99 in node.containing_docs()
        assert 99 not in before


class TestVirtualRoot:
    def test_mixed_roots_get_virtual_root(self, mixed_docs):
        guide = build_combined_guide(mixed_docs)
        assert guide.virtual_root
        assert guide.root.label == CombinedDataGuide.VIRTUAL_ROOT_LABEL
        assert {child for child in guide.root.children} == {"nitf", "dataset"}

    def test_virtual_root_paths_exclude_synthetic_label(self, mixed_docs):
        guide = build_combined_guide(mixed_docs)
        for path in guide.paths():
            assert path[0] in ("nitf", "dataset")

    def test_find_under_virtual_root(self, mixed_docs):
        guide = build_combined_guide(mixed_docs)
        assert guide.find(("nitf",)) is not None
        assert guide.find(("dataset",)) is not None
        assert guide.find(("bogus",)) is None


class TestProperties:
    @given(document_collections())
    def test_paths_are_union_of_member_paths(self, docs):
        guide = build_combined_guide(docs)
        expected = set()
        for doc in docs:
            expected.update(doc.distinct_label_paths())
        assert set(guide.paths()) == expected

    @given(document_collections())
    def test_containing_docs_matches_path_frequencies(self, docs):
        """Node containment == the independent per-document path oracle."""
        guide = build_combined_guide(docs)
        freqs = path_frequencies(docs)
        for path, count in freqs.items():
            containing = guide.docs_containing(path)
            assert len(containing) == count
            for doc in docs:
                present = path in set(doc.distinct_label_paths())
                assert (doc.doc_id in containing) == present

    @given(document_collections())
    def test_leaf_docs_disjoint_decomposition(self, docs):
        """Every document appears in leaf_docs of at least one node, and
        only at paths it actually contains."""
        guide = build_combined_guide(docs)
        seen = set()
        for node, path in guide.root.iter_with_paths():
            for doc_id in node.leaf_docs:
                seen.add(doc_id)
        assert seen == {doc.doc_id for doc in docs}
