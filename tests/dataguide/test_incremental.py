"""Tests for incremental combined-guide maintenance.

The equivalence oracle: after any sequence of adds/removes, the guide
must equal a full rebuild over the surviving documents -- same path set,
same annotations, same containment sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataguide import (
    add_document_to_guide,
    build_combined_guide,
    remove_document_from_guide,
)
from repro.xmlkit.model import XMLDocument, build_element
from repro.xmlkit.stats import path_frequencies
from tests.strategies import document_collections, xml_elements


def guide_signature(guide):
    """Comparable content: (path, leaf_docs, containing) per node."""
    rows = []
    for node, path in guide.root.iter_with_paths():
        rows.append((path, frozenset(node.leaf_docs), node.containing_docs()))
    return sorted(rows)


def paper_docs():
    from tests.xpath.test_evaluator import paper_documents

    return paper_documents()


class TestAddDocument:
    def test_add_equals_rebuild(self):
        docs = paper_docs()
        incremental = build_combined_guide(docs[:3])
        for doc in docs[3:]:
            incremental = add_document_to_guide(incremental, doc)
        rebuilt = build_combined_guide(docs)
        assert guide_signature(incremental) == guide_signature(rebuilt)
        assert incremental.doc_ids == rebuilt.doc_ids

    def test_duplicate_id_rejected(self):
        docs = paper_docs()
        guide = build_combined_guide(docs)
        with pytest.raises(ValueError):
            add_document_to_guide(guide, docs[0])

    def test_new_root_label_promotes_virtual_root(self):
        docs = paper_docs()
        guide = build_combined_guide(docs)
        assert not guide.virtual_root
        alien = XMLDocument(99, build_element("zzz", build_element("q")))
        guide = add_document_to_guide(guide, alien)
        assert guide.virtual_root
        assert set(guide.docs_containing(("zzz", "q"))) == {99}
        # Old containment still intact.
        assert set(guide.docs_containing(("a", "b"))) == {0, 1, 2, 4}

    def test_add_to_virtual_root(self, mixed_docs):
        guide = build_combined_guide(mixed_docs[:-1])
        guide = add_document_to_guide(guide, mixed_docs[-1])
        rebuilt = build_combined_guide(mixed_docs)
        assert guide_signature(guide) == guide_signature(rebuilt)


class TestRemoveDocument:
    def test_remove_equals_rebuild(self):
        docs = paper_docs()
        guide = build_combined_guide(docs)
        guide = remove_document_from_guide(guide, docs[1])  # d2
        rebuilt = build_combined_guide([docs[0]] + docs[2:])
        assert guide_signature(guide) == guide_signature(rebuilt)

    def test_dead_paths_pruned(self):
        docs = paper_docs()
        guide = build_combined_guide(docs)
        # (a, c, b) exists only in d2.
        assert guide.find(("a", "c", "b")) is not None
        guide = remove_document_from_guide(guide, docs[1])
        assert guide.find(("a", "c", "b")) is None

    def test_unknown_doc_rejected(self):
        docs = paper_docs()
        guide = build_combined_guide(docs)
        stranger = XMLDocument(42, build_element("a"))
        with pytest.raises(ValueError):
            remove_document_from_guide(guide, stranger)

    def test_last_document_rejected(self):
        docs = paper_docs()[:1]
        guide = build_combined_guide(docs)
        with pytest.raises(ValueError):
            remove_document_from_guide(guide, docs[0])

    def test_virtual_root_collapses(self):
        nitf = XMLDocument(0, build_element("x", build_element("p")))
        nasa = XMLDocument(1, build_element("y", build_element("q")))
        extra = XMLDocument(2, build_element("x", build_element("r")))
        guide = build_combined_guide([nitf, nasa, extra])
        assert guide.virtual_root
        guide = remove_document_from_guide(guide, nasa)
        assert not guide.virtual_root
        assert guide.root.label == "x"
        assert set(guide.docs_containing(("x", "p"))) == {0}

    def test_add_then_remove_round_trips(self):
        docs = paper_docs()
        baseline = build_combined_guide(docs)
        before = guide_signature(baseline)
        extra = XMLDocument(50, build_element("a", build_element("zz")))
        guide = add_document_to_guide(baseline, extra)
        assert guide.find(("a", "zz")) is not None
        guide = remove_document_from_guide(guide, extra)
        assert guide_signature(guide) == before


class TestIncrementalProperties:
    @given(document_collections(min_docs=3, max_docs=6), st.data())
    def test_random_add_remove_sequences(self, docs, data):
        """Any interleaving of adds and removes matches a rebuild."""
        # Start with the first two documents, then apply a random sequence.
        guide = build_combined_guide(docs[:2])
        present = {doc.doc_id: doc for doc in docs[:2]}
        pool = {doc.doc_id: doc for doc in docs[2:]}
        for _ in range(data.draw(st.integers(1, 6))):
            can_remove = len(present) > 1
            do_add = bool(pool) and (
                not can_remove or data.draw(st.booleans())
            )
            if do_add:
                doc_id = data.draw(st.sampled_from(sorted(pool)))
                guide = add_document_to_guide(guide, pool.pop(doc_id))
                present[doc_id] = guide and [
                    d for d in docs if d.doc_id == doc_id
                ][0]
            elif can_remove:
                doc_id = data.draw(st.sampled_from(sorted(present)))
                guide = remove_document_from_guide(guide, present.pop(doc_id))
        rebuilt = build_combined_guide(
            [doc for doc in docs if doc.doc_id in present]
        )
        assert guide_signature(guide) == guide_signature(rebuilt)

    @given(document_collections(min_docs=2, max_docs=5))
    def test_refcounts_match_path_frequencies(self, docs):
        guide = build_combined_guide(docs)
        if guide.virtual_root:
            return  # refcount of the synthetic root is not a path count
        freqs = path_frequencies(docs)
        for node, path in guide.root.iter_with_paths():
            assert node.containing_count == freqs[path], path
