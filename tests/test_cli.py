"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import signal
import subprocess
import sys
import time

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate(object):
    def test_writes_documents(self, tmp_path, capsys):
        code = main(
            ["generate", "--count", "4", "--out", str(tmp_path / "coll")]
        )
        assert code == 0
        files = sorted((tmp_path / "coll").glob("*.xml"))
        assert len(files) == 4
        out = capsys.readouterr().out
        assert "4 documents" in out

    def test_written_documents_load_back(self, tmp_path):
        from repro.tools.persist import load_collection

        main(["generate", "--count", "2", "--out", str(tmp_path / "c")])
        documents = load_collection(tmp_path / "c")
        assert len(documents) == 2
        assert all(doc.root.tag == "nitf" for doc in documents)

    def test_nasa_dtd(self, tmp_path):
        main(["generate", "--dtd", "nasa", "--count", "2", "--out", str(tmp_path / "n")])
        from repro.tools.persist import load_collection

        docs = load_collection(tmp_path / "n")
        assert all(doc.root.tag == "dataset" for doc in docs)
        assert all(doc.name.startswith("nasa-") for doc in docs)


class TestWorkload:
    def test_prints_queries(self, capsys):
        code = main(["workload", "--count", "15", "--queries", "5"])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 5
        assert all(line.startswith("/") for line in lines)

    def test_depth_flag(self, capsys):
        main(["workload", "--count", "15", "--queries", "8", "--dq", "3"])
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        from repro.xpath.parser import parse_query

        assert all(parse_query(line).depth <= 3 for line in lines)


class TestIndex:
    def test_prints_size_table(self, capsys):
        code = main(["index", "--count", "30", "--queries", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "CI (one-tier)" in out
        assert "first tier (L_I)" in out


class TestPipelineFlags:
    def test_collection_and_workload_flags(self, tmp_path, capsys):
        main(["generate", "--count", "8", "--out", str(tmp_path / "coll")])
        capsys.readouterr()
        main(
            [
                "workload",
                "--collection", str(tmp_path / "coll"),
                "--queries", "4",
                "--out", str(tmp_path / "w.txt"),
            ]
        )
        capsys.readouterr()
        code = main(
            [
                "index",
                "--collection", str(tmp_path / "coll"),
                "--workload", str(tmp_path / "w.txt"),
            ]
        )
        assert code == 0
        assert "CI (one-tier)" in capsys.readouterr().out

    def test_trace_export_flag(self, tmp_path, capsys):
        code = main(
            [
                "simulate",
                "--count", "20",
                "--queries", "5",
                "--capacity", "30000",
                "--trace", str(tmp_path / "t.jsonl"),
            ]
        )
        assert code == 0
        from repro.tools.trace import load_trace, summarise_trace

        summary = summarise_trace(load_trace(tmp_path / "t.jsonl"))
        assert summary.clients > 0


class TestSimulate:
    def test_summary_table(self, capsys):
        code = main(
            ["simulate", "--count", "30", "--queries", "10", "--capacity", "40000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulation summary" in out
        assert "improvement" in out

    def test_lossy_run(self, capsys):
        code = main(
            [
                "simulate",
                "--count", "30",
                "--queries", "10",
                "--capacity", "40000",
                "--loss", "0.001",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement" not in out  # single-protocol mode under loss

    def test_scheduler_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--count", "30",
                "--queries", "10",
                "--capacity", "40000",
                "--scheduler", "fcfs",
            ]
        )
        assert code == 0

    def test_channels_flag(self, capsys):
        code = main(
            [
                "simulate",
                "--count", "30",
                "--queries", "10",
                "--capacity", "40000",
                "--channels", "3",
                "--allocation", "demand",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Simulation summary" in out
        assert "completed" in out

    def test_rejects_bad_allocation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--channels", "2", "--allocation", "random"]
            )


STATS_ARGS = ["stats", "--count", "30", "--queries", "10", "--capacity", "40000"]


class TestStats:
    def test_human_report(self, capsys):
        code = main(STATS_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "Phase timings" in out
        assert "Channel bytes" in out
        assert "server.prune_to_pci" in out

    def test_json_report(self, capsys):
        import json

        code = main(STATS_ARGS + ["--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "run"
        assert len(payload["phases"]) >= 6
        assert payload["bytes"]["broadcast_total"] > 0
        assert (
            payload["bytes"]["data_total"] + payload["bytes"]["index_total"]
            == payload["bytes"]["broadcast_total"]
        )

    def test_observability_scope_does_not_leak(self, capsys):
        from repro import obs

        main(STATS_ARGS + ["--json"])
        capsys.readouterr()
        assert not obs.is_enabled()

    def test_trace_mode(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main(STATS_ARGS + ["--export-trace", str(trace)])
        assert code == 0
        capsys.readouterr()
        code = main(["stats", "--trace", str(trace), "--json"])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "trace"
        assert len(payload["phases"]) >= 6

    def test_out_file(self, tmp_path, capsys):
        import json

        out = tmp_path / "perf.json"
        code = main(STATS_ARGS + ["--out", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["source"] == "run"


def _spawn_daemon(tmp_path, *extra_args):
    """Start ``python -m repro serve`` on an ephemeral port; returns
    (process, port)."""
    port_file = tmp_path / "port.txt"
    # The child resolves ``repro`` the same way this process did: the
    # inherited PYTHONPATH (or an installed package) covers it.
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--count", "25",
            "--capacity", "20000",
            "--port-file", str(port_file),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text())
        if process.poll() is not None:
            raise RuntimeError(f"daemon died: {process.stdout.read()}")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("daemon never wrote its port file")


class TestServeClient:
    def test_serve_client_round_trip(self, tmp_path):
        """One scripted client against a real subprocess daemon."""
        import json

        process, port = _spawn_daemon(tmp_path, "--max-queries", "1")
        try:
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client", "//nitf",
                    "--port", str(port), "--json",
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            report = json.loads(result.stdout)
            assert report["satisfied"] is True
            assert report["access_bytes"] > 0
            assert report["tuning_bytes"] > 0
            assert report["cycles_verified"] == report["cycles_listened"] >= 1
            # --max-queries 1: the daemon drains by itself after serving.
            out, _ = process.communicate(timeout=60)
            assert process.returncode == 0
            assert "drained:" in out
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigint_drains_cleanly(self, tmp_path):
        """Acceptance: SIGINT mid-run produces a clean drain, not a
        traceback -- pending queries are served, the summary prints."""
        process, port = _spawn_daemon(tmp_path)
        try:
            process.send_signal(signal.SIGINT)
            out, _ = process.communicate(timeout=60)
            assert process.returncode == 0, out
            assert "drained:" in out
            assert "Traceback" not in out
        finally:
            if process.poll() is None:
                process.kill()

    def test_client_parser_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["client", "//nitf"])

    def test_serve_stdout_clean_log_json_and_client_trace(self, tmp_path):
        """Satellites: serve keeps stdout free of progress chatter (the
        structured log goes to stderr, here as JSON lines) and a traced
        client round-trips a v3 wire-trace artifact."""
        import json

        port_file = tmp_path / "port.txt"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--count", "25",
                "--capacity", "20000",
                "--port-file", str(port_file),
                "--max-queries", "1",
                "--log-json",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if port_file.exists() and port_file.read_text().strip():
                    break
                if process.poll() is not None:
                    raise RuntimeError(
                        f"daemon died: {process.stderr.read()}"
                    )
                time.sleep(0.05)
            port = int(port_file.read_text())
            trace_out = tmp_path / "wire.jsonl"
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "client", "//nitf",
                    "--port", str(port),
                    "--json", "--trace", "--trace-out", str(trace_out),
                ],
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            payload = json.loads(result.stdout)
            comp = payload["trace"]["components"]
            assert comp["total_seconds"] == pytest.approx(
                comp["queue_seconds"]
                + comp["build_seconds"]
                + comp["on_air_seconds"]
                + comp["tune_seconds"]
            )
            out, err = process.communicate(timeout=60)
            assert process.returncode == 0
            # stdout carries no progress chatter at all ...
            assert out == ""
            # ... stderr is machine-parseable JSON, one event per line,
            # ending with the drain summary.
            events = [json.loads(line)["event"] for line in err.splitlines()]
            assert "listening" in events
            assert events[-1] == "drained"

            from repro.tools.trace import load_trace

            records = load_trace(trace_out)
            assert records[0]["format"] == 3
            assert any(r["kind"] == "query_trace" for r in records)
        finally:
            if process.poll() is None:
                process.kill()

    def test_docstring_lists_every_subcommand(self):
        """Guard against --help drift: the module docstring documents
        exactly the registered subcommands."""
        import repro.__main__ as cli

        parser = cli.build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        for name in subparsers.choices:
            assert f"``{name}``" in cli.__doc__, (
                f"subcommand {name!r} missing from the module docstring"
            )
