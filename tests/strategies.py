"""Hypothesis strategies shared across property tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xmlkit.model import XMLDocument, XMLElement
from repro.xpath.ast import Axis, Step, WILDCARD, XPathQuery

#: A small closed label alphabet keeps path collisions (and therefore
#: interesting sharing in tries/automata) frequent.
LABELS = ("a", "b", "c", "d", "e")

labels = st.sampled_from(LABELS)

#: Text without XML-special characters (escaping has its own tests) and
#: without leading/trailing whitespace: the parser treats whitespace-only
#: runs around child elements as pretty-printing noise, so such text would
#: not round-trip by design.
plain_text = st.text(alphabet="abcdefghij xyz", min_size=0, max_size=12).map(
    lambda s: s.strip()
)


@st.composite
def xml_elements(draw, max_depth: int = 4, max_children: int = 3) -> XMLElement:
    """A random element tree over the small alphabet."""
    tag = draw(labels)
    element = XMLElement(tag, text=draw(plain_text))
    if max_depth > 1:
        for _ in range(draw(st.integers(0, max_children))):
            element.append(
                draw(xml_elements(max_depth=max_depth - 1, max_children=max_children))
            )
    return element


@st.composite
def xml_documents(draw, doc_id: int = 0, max_depth: int = 4) -> XMLDocument:
    return XMLDocument(doc_id=doc_id, root=draw(xml_elements(max_depth=max_depth)))


@st.composite
def document_collections(draw, min_docs: int = 1, max_docs: int = 6):
    count = draw(st.integers(min_docs, max_docs))
    return [
        XMLDocument(doc_id=index, root=draw(xml_elements()))
        for index in range(count)
    ]


label_paths = st.lists(labels, min_size=1, max_size=6).map(tuple)


@st.composite
def steps(draw) -> Step:
    axis = draw(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]))
    test = draw(st.one_of(labels, st.just(WILDCARD)))
    return Step(axis, test)


@st.composite
def queries(draw, max_steps: int = 5) -> XPathQuery:
    return XPathQuery.from_steps(
        draw(st.lists(steps(), min_size=1, max_size=max_steps))
    )
