"""Unit tests for the index node structure."""

from __future__ import annotations

import pytest

from repro.index.nodes import (
    IndexNode,
    NodeKind,
    ROOT_FLAG_VALUE,
    assign_preorder_ids,
    validate_tree,
)


def small_tree() -> IndexNode:
    root = IndexNode(0, "a")
    b = root.add_child(IndexNode(0, "b"))
    b.add_child(IndexNode(0, "a", doc_ids=(0, 1)))
    b.add_child(IndexNode(0, "c", doc_ids=(1,)))
    c = root.add_child(IndexNode(0, "c", doc_ids=(2,)))
    c.add_child(IndexNode(0, "b", doc_ids=(1,)))
    assign_preorder_ids(root)
    return root


class TestKindsAndFlags:
    def test_root_kind(self):
        root = small_tree()
        assert root.kind is NodeKind.ROOT
        assert root.flag_value == ROOT_FLAG_VALUE

    def test_internal_kind(self):
        root = small_tree()
        internal = root.children[0]
        assert internal.kind is NodeKind.INTERNAL
        assert internal.flag_value == 0

    def test_leaf_kind(self):
        root = small_tree()
        leaf = root.children[0].children[0]
        assert leaf.kind is NodeKind.LEAF
        assert leaf.flag_value == 1

    def test_internal_node_may_carry_docs(self):
        # The paper's n3: internal *and* annotated.
        root = small_tree()
        node_c = root.children[1]
        assert node_c.kind is NodeKind.INTERNAL
        assert node_c.doc_ids == (2,)


class TestTraversal:
    def test_preorder_ids(self):
        root = small_tree()
        ids = [node.node_id for node in root.iter_preorder()]
        assert ids == list(range(6))

    def test_preorder_matches_paper_dfs_order(self):
        # Figure 5's order: root, then the b-subtree fully, then c-subtree.
        labels = [node.label for node in small_tree().iter_preorder()]
        assert labels == ["a", "b", "a", "c", "c", "b"]

    def test_paths(self):
        paths = {path for _n, path in small_tree().iter_with_paths()}
        assert ("a", "b", "c") in paths
        assert ("a", "c", "b") in paths

    def test_path_from_root(self):
        root = small_tree()
        leaf = root.children[1].children[0]
        assert leaf.path_from_root() == ("a", "c", "b")

    def test_child_by_label(self):
        root = small_tree()
        assert root.child_by_label("b") is root.children[0]
        assert root.child_by_label("zzz") is None

    def test_subtree_doc_ids(self):
        root = small_tree()
        assert root.subtree_doc_ids() == (0, 1, 2)
        assert root.children[1].subtree_doc_ids() == (1, 2)

    def test_subtree_node_count(self):
        assert small_tree().subtree_node_count() == 6


class TestValidateTree:
    def test_valid_tree_passes(self):
        validate_tree(small_tree())

    def test_bad_ids_detected(self):
        root = small_tree()
        root.children[0].node_id = 99
        with pytest.raises(ValueError):
            validate_tree(root)

    def test_duplicate_child_labels_detected(self):
        root = IndexNode(0, "a")
        root.add_child(IndexNode(1, "b"))
        root.add_child(IndexNode(2, "b"))
        with pytest.raises(ValueError):
            validate_tree(root)

    def test_unsorted_docs_detected(self):
        root = IndexNode(0, "a", doc_ids=(2, 1))
        with pytest.raises(ValueError):
            validate_tree(root)

    def test_broken_parent_link_detected(self):
        root = IndexNode(0, "a")
        child = IndexNode(1, "b")
        root.children.append(child)  # bypass add_child
        with pytest.raises(ValueError):
            validate_tree(root)
