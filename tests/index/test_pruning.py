"""Unit, example and property tests for CI -> PCI pruning."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.filtering.dfa import LazyQueryDFA
from repro.index.ci import build_ci, build_full_ci
from repro.index.pruning import prune_to_pci
from repro.xpath.evaluator import matching_documents
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


def paper_docs():
    from tests.xpath.test_evaluator import paper_documents

    return paper_documents()


class TestPaperFigure6:
    """Q = {/a/b, /a/b/c} prunes the running example to n1, n2, n5."""

    def test_kept_structure(self):
        ci = build_full_ci(paper_docs())
        queries_ = [parse_query("/a/b"), parse_query("/a/b/c")]
        pci, stats = prune_to_pci(ci, queries_)
        kept_paths = {node.path_from_root() for node in pci.nodes}
        assert kept_paths == {("a",), ("a", "b"), ("a", "b", "c")}
        assert stats.nodes_before == 7
        assert stats.nodes_after == 3

    def test_results_preserved(self):
        docs = paper_docs()
        ci = build_full_ci(docs)
        queries_ = [parse_query("/a/b"), parse_query("/a/b/c")]
        pci, _stats = prune_to_pci(ci, queries_)
        for query in queries_:
            assert set(pci.lookup(query).doc_ids) == matching_documents(query, docs)

    def test_orphaned_annotations_reattached(self):
        """d1's only annotation lives at the pruned node a/b/a; it must
        re-attach at a/b or /a/b would lose a result document."""
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci(ci, [parse_query("/a/b"), parse_query("/a/b/c")])
        node_b = pci.find_node(("a", "b"))
        assert 0 in node_b.doc_ids  # d1

    def test_unrequested_annotations_dropped(self):
        """d4 matches neither query; its annotations must vanish."""
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci(ci, [parse_query("/a/b"), parse_query("/a/b/c")])
        assert 3 not in pci.annotated_doc_ids()


class TestPruningBehaviour:
    def test_no_matching_query_yields_bare_root(self):
        ci = build_full_ci(paper_docs())
        pci, stats = prune_to_pci(ci, [parse_query("/zzz")])
        assert pci.node_count == 1
        assert pci.total_doc_entries() == 0

    def test_descendant_query_keeps_matching_spine(self):
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci(ci, [parse_query("/a//c")])
        kept = {node.path_from_root() for node in pci.nodes}
        # All paths ending in c are accepting; their ancestors survive.
        assert ("a", "b", "c") in kept
        assert ("a", "c") in kept
        assert ("a", "b", "a") not in kept  # no c below, dead

    def test_prebuilt_dfa_accepted(self):
        ci = build_full_ci(paper_docs())
        query_list = [parse_query("/a/b")]
        dfa = LazyQueryDFA.from_queries(query_list)
        pci_a, _ = prune_to_pci(ci, query_list, dfa=dfa)
        pci_b, _ = prune_to_pci(ci, query_list)
        assert {n.path_from_root() for n in pci_a.nodes} == {
            n.path_from_root() for n in pci_b.nodes
        }

    def test_stats_ratios(self):
        ci = build_full_ci(paper_docs())
        _pci, stats = prune_to_pci(ci, [parse_query("/a/b")])
        assert 0 < stats.node_ratio < 1
        assert 0 < stats.size_ratio < 1
        assert stats.doc_entries_after <= stats.doc_entries_before

    def test_wildcard_queries(self):
        docs = paper_docs()
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci(ci, [parse_query("/a/c/*")])
        assert set(pci.lookup(parse_query("/a/c/*")).doc_ids) == {1, 3, 4}


class TestPruningProperties:
    @given(document_collections(), st.lists(queries(), min_size=1, max_size=4))
    def test_transparency(self, docs, query_list):
        """The paper's core guarantee: "pruning is transparent to clients"
        -- every pending query finds exactly its CI result set in the PCI."""
        ci = build_full_ci(docs)
        pci, _stats = prune_to_pci(ci, query_list)
        for query in query_list:
            expected = set(ci.lookup(query).doc_ids)
            assert set(pci.lookup(query).doc_ids) == expected, str(query)

    @given(
        document_collections(min_docs=2), st.lists(queries(), min_size=1, max_size=4)
    )
    def test_transparency_under_virtual_root(self, docs, query_list):
        """Transparency when the collection needs a synthetic root: mixed
        root labels force ``virtual_root=True`` and the depth-shifted DFA
        walk, which plain random collections only sometimes exercise."""
        for index, doc in enumerate(docs):
            doc.root.tag = ("a", "b")[index % 2]  # guarantee >= 2 root labels
        ci = build_full_ci(docs)
        assert ci.virtual_root
        pci, _stats = prune_to_pci(ci, query_list)
        for query in query_list:
            expected = set(ci.lookup(query).doc_ids)
            assert set(pci.lookup(query).doc_ids) == expected, str(query)

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=4))
    def test_pci_never_larger(self, docs, query_list):
        """Pruning must reduce (or preserve) index size -- the headline."""
        ci = build_full_ci(docs)
        _pci, stats = prune_to_pci(ci, query_list)
        assert stats.bytes_after <= stats.bytes_before
        assert stats.nodes_after <= stats.nodes_before
        assert stats.doc_entries_after <= stats.doc_entries_before

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_annotations_only_for_requested_docs(self, docs, query_list):
        """Documents no pending query requests never appear in the PCI."""
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci(ci, query_list)
        requested = set()
        for query in query_list:
            requested |= matching_documents(query, docs)
        assert set(pci.annotated_doc_ids()) <= requested

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_kept_nodes_lead_to_accepting_nodes(self, docs, query_list):
        """Every PCI node has an accepting descendant-or-self (no dead
        weight survives pruning)."""
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci(ci, query_list)
        if pci.node_count == 1 and pci.total_doc_entries() == 0:
            return  # bare-root fallback

        def doc_path(node):
            """Label path in document space (virtual root stripped)."""
            raw = node.path_from_root()
            return raw[1:] if pci.virtual_root else raw

        for node in pci.nodes:
            if pci.virtual_root and node is pci.root:
                continue
            subtree_paths = {doc_path(n) for n in node.iter_preorder()}
            assert any(
                query.matches_path(path)
                for query in query_list
                for path in subtree_paths
            ), f"dead node {node.path_from_root()}"

    def test_pruning_with_requested_subset_ci(self, nitf_docs, nitf_queries):
        """Realistic pipeline: CI over requested docs, then pruning."""
        requested = set()
        for query in nitf_queries:
            requested |= matching_documents(query, nitf_docs)
        ci = build_ci(nitf_docs, requested)
        pci, stats = prune_to_pci(ci, nitf_queries)
        assert stats.bytes_after <= stats.bytes_before
        for query in nitf_queries[:10]:
            assert set(pci.lookup(query).doc_ids) == matching_documents(
                query, nitf_docs
            )
