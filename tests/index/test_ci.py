"""Unit, differential and property tests for the Compact Index."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import CompactIndex, build_ci, build_full_ci
from repro.xmlkit.model import XMLDocument
from repro.xpath.evaluator import matching_documents
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


@pytest.fixture()
def paper_ci():
    from tests.xpath.test_evaluator import paper_documents

    return build_full_ci(paper_documents()), paper_documents()


class TestBuild:
    def test_paper_example_node_count(self, paper_ci):
        ci, _docs = paper_ci
        # Our reconstruction of Figure 3(b) yields 7 distinct paths.
        assert ci.node_count == 7

    def test_nodes_in_preorder(self, paper_ci):
        ci, _docs = paper_ci
        assert [node.node_id for node in ci.nodes] == list(range(ci.node_count))
        # Depth-first, children label-sorted: a, a/b, a/b/a, a/b/c, a/c, ...
        assert [node.label for node in ci.nodes] == ["a", "b", "a", "c", "c", "a", "b"]

    def test_annotations_at_maximal_paths(self, paper_ci):
        ci, _docs = paper_ci
        assert ci.find_node(("a", "b", "a")).doc_ids == (0, 1)
        assert ci.find_node(("a", "c")).doc_ids == (2,)
        assert ci.find_node(("a",)).doc_ids == ()

    def test_d2_pointer_appears_three_times(self, paper_ci):
        """Section 3.3's motivating observation."""
        ci, _docs = paper_ci
        occurrences = sum(1 for node in ci.nodes if 1 in node.doc_ids)
        assert occurrences == 3

    def test_total_doc_entries(self, paper_ci):
        ci, _docs = paper_ci
        assert ci.total_doc_entries() == sum(len(n.doc_ids) for n in ci.nodes)

    def test_annotated_doc_ids_cover_collection(self, paper_ci):
        ci, _docs = paper_ci
        assert ci.annotated_doc_ids() == frozenset(range(5))

    def test_build_ci_restricts_to_requested(self):
        from tests.xpath.test_evaluator import paper_documents

        docs = paper_documents()
        ci = build_ci(docs, requested_doc_ids={3, 4})
        assert ci.annotated_doc_ids() == frozenset({3, 4})
        # d1's unique path a/b/a survives only if d2 (not requested) --
        # here neither is requested so the node is gone entirely.
        assert ci.find_node(("a", "b", "a")) is None

    def test_build_ci_empty_requested_rejected(self):
        from tests.xpath.test_evaluator import paper_documents

        with pytest.raises(ValueError):
            build_ci(paper_documents(), requested_doc_ids=set())

    def test_size_first_tier_smaller(self, paper_ci):
        ci, _docs = paper_ci
        assert ci.size_bytes(one_tier=False) < ci.size_bytes(one_tier=True)

    def test_size_formula(self, paper_ci):
        ci, _docs = paper_ci
        model = ci.size_model
        expected = sum(
            model.node_bytes(len(n.children), len(n.doc_ids), one_tier=True)
            for n in ci.nodes
        )
        assert ci.size_bytes(one_tier=True) == expected


class TestLookup:
    def test_paper_q1(self, paper_ci):
        """q1 = /a/b/a -> d1, d2 via leaf n4 (the Section 3.1 walkthrough)."""
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a/b/a"))
        assert result.doc_ids == (0, 1)
        matched = {ci.nodes[i].path_from_root() for i in result.matched_node_ids}
        assert matched == {("a", "b", "a")}

    def test_paper_q3_descendant(self, paper_ci):
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a//c"))
        assert result.doc_ids == (1, 2, 3, 4)

    def test_paper_q5_wildcard(self, paper_ci):
        ci, _docs = paper_ci
        assert ci.lookup(parse_query("/a/c/*")).doc_ids == (1, 3, 4)

    def test_internal_match_collects_subtree(self, paper_ci):
        """A query matching an internal node must see the whole subtree's
        documents, not only the node's own annotations."""
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a/c"))
        assert result.doc_ids == (1, 2, 3, 4)  # d3 at the node, rest below

    def test_no_match(self, paper_ci):
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a/z"))
        assert result.is_empty
        assert result.matched_node_ids == frozenset()
        # The client still read the root before the branch died.
        assert ci.root.node_id in result.visited_node_ids

    def test_visited_includes_walk_and_match_subtrees(self, paper_ci):
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a/c"))
        visited_paths = {ci.nodes[i].path_from_root() for i in result.visited_node_ids}
        assert ("a",) in visited_paths  # walk
        assert ("a", "c", "a") in visited_paths  # match subtree
        assert ("a", "c", "b") in visited_paths

    def test_dead_branches_not_visited(self, paper_ci):
        ci, _docs = paper_ci
        result = ci.lookup(parse_query("/a/c/a"))
        visited_paths = {ci.nodes[i].path_from_root() for i in result.visited_node_ids}
        assert ("a", "b", "a") not in visited_paths  # /a/b subtree dead early

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_lookup_matches_evaluator(self, docs, query_list):
        """CI lookup == naive evaluation, for any collection and query."""
        ci = build_full_ci(docs)
        for query in query_list:
            expected = matching_documents(query, docs)
            assert set(ci.lookup(query).doc_ids) == expected, str(query)


class TestVirtualRoot:
    def test_mixed_collection_lookup(self, mixed_docs):
        ci = build_full_ci(mixed_docs)
        assert ci.virtual_root
        result = ci.lookup(parse_query("/nitf/head/title"))
        expected = matching_documents(parse_query("/nitf/head/title"), mixed_docs)
        assert set(result.doc_ids) == expected

    def test_leading_descendant_spans_roots(self, mixed_docs):
        ci = build_full_ci(mixed_docs)
        result = ci.lookup(parse_query("//title"))
        expected = matching_documents(parse_query("//title"), mixed_docs)
        assert set(result.doc_ids) == expected


class TestMultiQueryLookup:
    def test_lookup_with_shared_nfa_unions_results(self, paper_ci):
        """A multi-query NFA locates the union of every query's results
        in one walk (the server's resolution fast path)."""
        from repro.filtering.nfa import SharedPathNFA

        ci, _docs = paper_ci
        nfa = SharedPathNFA()
        nfa.add_queries([parse_query("/a/b/a"), parse_query("/a/c/a")])
        nfa.freeze()
        result = ci.lookup_with_nfa(nfa)
        assert set(result.doc_ids) == {0, 1, 3, 4}

    def test_shared_walk_visits_no_more_than_separate_walks(self, paper_ci):
        from repro.filtering.nfa import SharedPathNFA

        ci, _docs = paper_ci
        queries_ = [parse_query("/a/b/a"), parse_query("/a/c/a")]
        nfa = SharedPathNFA()
        nfa.add_queries(queries_)
        nfa.freeze()
        shared = ci.lookup_with_nfa(nfa).visited_node_ids
        separate = frozenset().union(
            *(ci.lookup(q).visited_node_ids for q in queries_)
        )
        assert shared == separate
