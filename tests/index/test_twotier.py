"""Unit and property tests for the two-tier index structure."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import build_full_ci
from repro.index.pruning import prune_to_pci
from repro.index.twotier import OffsetList, split_two_tier
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


def paper_two_tier():
    from tests.xpath.test_evaluator import paper_documents

    docs = paper_documents()
    ci = build_full_ci(docs)
    pci, _ = prune_to_pci(ci, [parse_query("/a/b"), parse_query("/a//c")])
    return split_two_tier(pci), docs


class TestOffsetList:
    def test_sorted_required(self):
        with pytest.raises(ValueError):
            OffsetList(((5, 100), (2, 50)))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            OffsetList(((2, 100), (2, 200)))

    def test_from_mapping_sorts(self):
        offsets = OffsetList.from_mapping({9: 900, 3: 300})
        assert offsets.entries == ((3, 300), (9, 900))

    def test_offset_of(self):
        offsets = OffsetList.from_mapping({3: 300})
        assert offsets.offset_of(3) == 300
        assert offsets.offset_of(4) is None

    def test_lookup_filters(self):
        offsets = OffsetList.from_mapping({1: 10, 2: 20, 3: 30})
        assert offsets.lookup({2, 3, 99}) == {2: 20, 3: 30}

    def test_size_matches_model(self):
        offsets = OffsetList.from_mapping({i: i * 10 for i in range(7)})
        assert offsets.size_bytes == offsets.size_model.offset_list_bytes(7)

    def test_packet_count(self):
        # 21 entries * 6 B + 2 B header = 128 B -> exactly one packet.
        offsets = OffsetList.from_mapping({i: i for i in range(21)})
        assert offsets.size_bytes == 128
        assert offsets.packet_count == 1
        bigger = OffsetList.from_mapping({i: i for i in range(22)})
        assert bigger.packet_count == 2


class TestTwoTierIndex:
    def test_first_tier_smaller_than_one_tier(self):
        two_tier, _docs = paper_two_tier()
        assert two_tier.first_tier_bytes < two_tier.one_tier_bytes()

    def test_size_difference_is_pointer_mass(self):
        """The BCNF argument, byte for byte: the one-tier layout costs
        exactly one pointer per document annotation more."""
        two_tier, _docs = paper_two_tier()
        pci = two_tier.first_tier
        pointer_bytes = pci.size_model.pointer_bytes
        expected_gap = pci.total_doc_entries() * pointer_bytes
        assert two_tier.one_tier_bytes() - two_tier.first_tier_bytes == expected_gap

    def test_make_offset_list(self):
        two_tier, _docs = paper_two_tier()
        offsets = two_tier.make_offset_list({1: 4096, 0: 2048})
        assert offsets.entries == ((0, 2048), (1, 4096))

    def test_savings_positive_when_duplication_dominates(self):
        two_tier, _docs = paper_two_tier()
        # A cycle carrying a couple of documents: the offset list is tiny
        # compared with the removed pointers.
        assert two_tier.savings_bytes(cycle_doc_count=2) > 0

    def test_first_tier_packets(self):
        two_tier, _docs = paper_two_tier()
        model = two_tier.size_model
        assert two_tier.first_tier_packets == model.packets_for(
            two_tier.first_tier_bytes
        )

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_equivalence_property(self, docs, query_list):
        """Two-tier lookup (IDs from tier 1, offsets from tier 2) locates
        exactly the one-tier (doc, offset) pairs."""
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci(ci, query_list)
        two_tier = split_two_tier(pci)
        # A synthetic cycle broadcasting every annotated document.
        doc_offsets = {
            doc_id: 1000 + 64 * doc_id for doc_id in sorted(pci.annotated_doc_ids())
        }
        offsets = two_tier.make_offset_list(doc_offsets)
        for query in query_list:
            ids = set(pci.lookup(query).doc_ids)  # tier-1 lookup
            located = offsets.lookup(ids)  # tier-2 join
            assert located == {doc_id: doc_offsets[doc_id] for doc_id in ids}
