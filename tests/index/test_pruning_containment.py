"""Tests for the containment-annotated pruning variant (ablation).

This is the literal reading of the paper's Figure 6 (keep accepting
nodes + ancestors, full containment lists at accepting nodes).  It is
transparent to queries but can exceed the CI's size under load -- the
measurement that justified making the deduplicating scheme the default
(DESIGN.md section 7.1, EXPERIMENTS.md ablation table).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import build_ci, build_full_ci
from repro.index.pruning import prune_to_pci, prune_to_pci_containment
from repro.xpath.evaluator import matching_documents
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


def paper_docs():
    from tests.xpath.test_evaluator import paper_documents

    return paper_documents()


class TestFigure6Literal:
    def test_kept_structure_matches_figure(self):
        """Q = {/a/b, /a/b/c} keeps exactly n1, n2, n5 -- the figure."""
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci_containment(
            ci, [parse_query("/a/b"), parse_query("/a/b/c")]
        )
        assert {n.path_from_root() for n in pci.nodes} == {
            ("a",),
            ("a", "b"),
            ("a", "b", "c"),
        }

    def test_accepting_nodes_carry_containment(self):
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci_containment(
            ci, [parse_query("/a/b"), parse_query("/a/b/c")]
        )
        node_b = pci.find_node(("a", "b"))
        # containing(a/b) = d1, d2, d3, d5 -- the full result of /a/b.
        assert node_b.doc_ids == (0, 1, 2, 4)
        # Pure ancestors carry nothing.
        assert pci.find_node(("a",)).doc_ids == ()

    def test_lookup_reads_matched_nodes_only(self):
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci_containment(ci, [parse_query("/a/b")])
        lookup = pci.lookup(parse_query("/a/b"))
        assert set(lookup.doc_ids) == {0, 1, 2, 4}
        # No subtree expansion: visited == live walk only.
        visited_paths = {
            pci.nodes[i].path_from_root() for i in lookup.visited_node_ids
        }
        assert visited_paths <= {("a",), ("a", "b")}

    def test_duplication_across_nested_accepting_nodes(self):
        """The duplication this variant suffers from: a doc in both
        containment sets appears twice."""
        ci = build_full_ci(paper_docs())
        pci, _ = prune_to_pci_containment(
            ci, [parse_query("/a/b"), parse_query("/a/b/c")]
        )
        occurrences = sum(1 for node in pci.nodes if 1 in node.doc_ids)  # d2
        assert occurrences == 2  # at (a,b) and (a,b,c)

    def test_can_exceed_maximal_scheme(self, nitf_docs, nitf_queries):
        """Measured motivation for the default: under a real workload the
        containment layout is never smaller than the deduplicating one."""
        requested = set()
        for query in nitf_queries:
            requested |= matching_documents(query, nitf_docs)
        ci = build_ci(nitf_docs, requested)
        _pci_m, stats_m = prune_to_pci(ci, nitf_queries)
        _pci_c, stats_c = prune_to_pci_containment(ci, nitf_queries)
        assert stats_c.bytes_after >= stats_m.bytes_after


class TestContainmentProperties:
    @given(document_collections(), st.lists(queries(), min_size=1, max_size=4))
    def test_transparency(self, docs, query_list):
        """Pending queries still find their exact CI result sets."""
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci_containment(ci, query_list)
        for query in query_list:
            expected = set(ci.lookup(query).doc_ids)
            assert set(pci.lookup(query).doc_ids) == expected, str(query)

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=4))
    def test_structure_matches_default_pruning(self, docs, query_list):
        """Both variants keep exactly the same node set; only annotations
        differ."""
        ci = build_full_ci(docs)
        pci_m, _ = prune_to_pci(ci, query_list)
        pci_c, _ = prune_to_pci_containment(ci, query_list)
        assert {n.path_from_root() for n in pci_m.nodes} == {
            n.path_from_root() for n in pci_c.nodes
        }

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_lookup_never_visits_beyond_walk(self, docs, query_list):
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci_containment(ci, query_list)
        for query in query_list:
            lookup = pci.lookup(query)
            # Every visited node lies on a live root walk: its ancestors
            # are all visited too.
            for node_id in lookup.visited_node_ids:
                node = pci.nodes[node_id]
                while node.parent is not None:
                    node = node.parent
                    assert node.node_id in lookup.visited_node_ids
