"""Failure-injection tests for the wire decoders.

A broadcast receiver sees whatever bytes arrive; every decoder must turn
malformed input into :class:`IndexEncodingError` -- never a crash, hang
or silent garbage.  Property tests fuzz with random bytes and with
corrupted valid encodings.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import build_full_ci
from repro.index.encoding import (
    IndexEncodingError,
    LabelTable,
    decode_index,
    decode_offset_list,
    encode_index,
)


def paper_blob():
    from tests.xpath.test_evaluator import paper_documents

    index = build_full_ci(paper_documents())
    table = LabelTable.from_index(index)
    return index, table, encode_index(index, table, one_tier=False)


class TestDecodeIndexRobustness:
    def test_empty_stream(self):
        _index, table, _blob = paper_blob()
        with pytest.raises(IndexEncodingError):
            decode_index(b"", table, one_tier=False)

    def test_truncated_stream(self):
        _index, table, blob = paper_blob()
        for cut in (1, 5, len(blob) // 2, len(blob) - 1):
            with pytest.raises(IndexEncodingError):
                decode_index(blob[:cut], table, one_tier=False)

    def test_self_pointer_cycle(self):
        table = LabelTable(("a",))
        # One node whose single child entry points back at offset 0.
        blob = struct.pack(">HHH", 0, 1, 0) + struct.pack(">HI", 0, 0)
        with pytest.raises(IndexEncodingError, match="cycle"):
            decode_index(blob, table, one_tier=False)

    def test_pointer_outside_stream(self):
        table = LabelTable(("a",))
        blob = struct.pack(">HHH", 0, 1, 0) + struct.pack(">HI", 0, 10_000)
        with pytest.raises(IndexEncodingError):
            decode_index(blob, table, one_tier=False)

    def test_unknown_label_id(self):
        table = LabelTable(("a",))
        child = struct.pack(">HHH", 1, 0, 0)
        blob = struct.pack(">HHH", 0, 1, 0) + struct.pack(">HI", 7, 12) + child
        with pytest.raises(IndexEncodingError, match="label id"):
            decode_index(blob, table, one_tier=False)

    def test_leaf_flag_with_children(self):
        table = LabelTable(("a",))
        child = struct.pack(">HHH", 1, 0, 0)
        # Root header (6 B) + one child entry (6 B) = child at offset 12.
        blob = struct.pack(">HHH", 1, 1, 0) + struct.pack(">HI", 0, 12) + child
        with pytest.raises(IndexEncodingError, match="leaf flag"):
            decode_index(blob, table, one_tier=False)

    def test_deep_pointer_chain_rejected(self):
        """A hostile chain of single-child nodes must hit the depth cap,
        not the interpreter's recursion limit."""
        table = LabelTable(("a",))
        node_size = 6 + 6  # header + one child entry
        count = 1000
        parts = []
        for index in range(count):
            target = (index + 1) * node_size
            parts.append(struct.pack(">HHH", 0, 1, 0) + struct.pack(">HI", 0, target))
        parts.append(struct.pack(">HHH", 1, 0, 0))
        blob = b"".join(parts)
        with pytest.raises(IndexEncodingError, match="deep"):
            decode_index(blob, table, one_tier=False)

    @given(st.binary(min_size=0, max_size=300))
    def test_random_bytes_never_crash(self, blob):
        _index, table, _valid = paper_blob()
        try:
            decode_index(blob, table, one_tier=False)
        except IndexEncodingError:
            pass  # the only acceptable failure mode

    @given(st.data())
    def test_corrupted_valid_stream_never_crashes(self, data):
        index, table, blob = paper_blob()
        position = data.draw(st.integers(0, len(blob) - 1))
        value = data.draw(st.integers(0, 255))
        corrupted = blob[:position] + bytes([value]) + blob[position + 1 :]
        try:
            decoded, _ = decode_index(corrupted, table, one_tier=False)
        except IndexEncodingError:
            return
        # If it still decodes, it must at least be a structurally valid
        # index (the constructor validated it).
        assert decoded.node_count >= 1


class TestDecodeOffsetListRobustness:
    def test_truncated(self):
        with pytest.raises(IndexEncodingError):
            decode_offset_list(struct.pack(">H", 5))

    def test_unsorted_entries_rejected(self):
        blob = struct.pack(">H", 2) + struct.pack(">HI", 9, 1) + struct.pack(">HI", 3, 2)
        with pytest.raises(IndexEncodingError):
            decode_offset_list(blob)

    @given(st.binary(min_size=0, max_size=120))
    def test_random_bytes_never_crash(self, blob):
        try:
            decode_offset_list(blob)
        except IndexEncodingError:
            pass


class TestLabelTableRobustness:
    def test_truncated(self):
        with pytest.raises(IndexEncodingError):
            LabelTable.decode(struct.pack(">H", 3))

    def test_out_of_range_id(self):
        blob = struct.pack(">H", 1) + struct.pack(">HB", 5, 1) + b"a"
        with pytest.raises(IndexEncodingError):
            LabelTable.decode(blob)

    @given(st.binary(min_size=0, max_size=120))
    def test_random_bytes_never_crash(self, blob):
        try:
            LabelTable.decode(blob)
        except IndexEncodingError:
            pass
