"""Unit tests for the size model."""

from __future__ import annotations

import pytest

from repro.index.sizes import PAPER_SIZE_MODEL, SizeModel


class TestValidation:
    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            SizeModel(flag_bytes=-1)

    def test_tiny_packet_rejected(self):
        with pytest.raises(ValueError):
            SizeModel(packet_bytes=4)


class TestPaperModel:
    def test_paper_constants(self):
        model = PAPER_SIZE_MODEL
        assert model.doc_id_bytes == 2  # "2 bytes to represent an ID"
        assert model.pointer_bytes == 4  # "4 bytes to represent a pointer"
        assert model.packet_bytes == 128  # "fixed size such as 128 byte/packet"

    def test_node_header(self):
        assert PAPER_SIZE_MODEL.node_header_bytes == 2 + 2 + 2

    def test_entry_sizes(self):
        model = PAPER_SIZE_MODEL
        assert model.child_entry_bytes == 6
        assert model.doc_entry_one_tier_bytes == 6
        assert model.doc_entry_first_tier_bytes == 2
        assert model.offset_entry_bytes == 6


class TestNodeBytes:
    def test_leaf_one_tier(self):
        model = PAPER_SIZE_MODEL
        assert model.node_bytes(0, 2, one_tier=True) == 6 + 0 + 12

    def test_leaf_first_tier(self):
        model = PAPER_SIZE_MODEL
        assert model.node_bytes(0, 2, one_tier=False) == 6 + 0 + 4

    def test_internal(self):
        model = PAPER_SIZE_MODEL
        assert model.node_bytes(3, 0, one_tier=True) == 6 + 18

    def test_two_tier_never_larger(self):
        model = PAPER_SIZE_MODEL
        for children in range(4):
            for docs in range(4):
                assert model.node_bytes(children, docs, one_tier=False) <= model.node_bytes(
                    children, docs, one_tier=True
                )


class TestOffsetList:
    def test_sizes(self):
        model = PAPER_SIZE_MODEL
        assert model.offset_list_bytes(0) == 2
        assert model.offset_list_bytes(10) == 2 + 60


class TestPackets:
    def test_packets_for(self):
        model = PAPER_SIZE_MODEL
        assert model.packets_for(0) == 0
        assert model.packets_for(1) == 1
        assert model.packets_for(128) == 1
        assert model.packets_for(129) == 2

    def test_packets_for_negative_rejected(self):
        with pytest.raises(ValueError):
            PAPER_SIZE_MODEL.packets_for(-1)

    def test_packet_aligned(self):
        assert PAPER_SIZE_MODEL.packet_aligned_bytes(130) == 256

    def test_document_air_bytes_includes_header(self):
        model = PAPER_SIZE_MODEL
        # 128-byte doc + 4-byte header no longer fits one packet.
        assert model.document_air_bytes(128) == 256
        assert model.document_air_bytes(120) == 128

    def test_label_table_bytes(self):
        assert PAPER_SIZE_MODEL.label_table_bytes(10) > 10 * 2
