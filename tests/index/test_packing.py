"""Unit and property tests for packet packing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import CompactIndex, build_full_ci
from repro.index.nodes import IndexNode, assign_preorder_ids
from repro.index.packing import PackingStrategy, pack_index
from repro.index.sizes import SizeModel
from tests.strategies import document_collections


def paper_index() -> CompactIndex:
    from tests.xpath.test_evaluator import paper_documents

    return build_full_ci(paper_documents())


class TestGreedyDFS:
    def test_node_order_is_preorder(self):
        packed = pack_index(paper_index(), one_tier=True)
        assert packed.node_order == tuple(range(paper_index().node_count))

    def test_every_node_packed_exactly_once(self):
        index = paper_index()
        packed = pack_index(index, one_tier=True)
        assert set(packed.packet_of_node) == {n.node_id for n in index.nodes}

    def test_adjacent_nodes_share_packets(self):
        """The point of greedy packing: small sibling nodes co-reside."""
        index = paper_index()
        packed = pack_index(index, one_tier=True)
        assert packed.packet_count < index.node_count

    def test_total_bytes_packet_aligned(self):
        packed = pack_index(paper_index(), one_tier=True)
        assert packed.total_bytes == packed.packet_count * packed.packet_bytes

    def test_utilisation_bounded(self):
        packed = pack_index(paper_index(), one_tier=True)
        assert 0 < packed.utilisation <= 1

    def test_packets_for_nodes(self):
        index = paper_index()
        packed = pack_index(index, one_tier=True)
        touched = packed.packets_for_nodes([0])
        assert touched == frozenset(packed.packet_of_node[0])
        assert packed.tuning_bytes_for_nodes([0]) == len(touched) * 128

    def test_first_tier_needs_fewer_packets(self):
        index = paper_index()
        one = pack_index(index, one_tier=True)
        first = pack_index(index, one_tier=False)
        assert first.packet_count <= one.packet_count


class TestOversizedNodes:
    def make_index_with_fat_node(self) -> CompactIndex:
        root = IndexNode(0, "a")
        fat = IndexNode(0, "b", doc_ids=tuple(range(200)))  # 6+200*6 bytes
        root.add_child(fat)
        assign_preorder_ids(root)
        return CompactIndex(root)

    def test_fat_node_spans_packets(self):
        index = self.make_index_with_fat_node()
        packed = pack_index(index, one_tier=True)
        fat_id = index.nodes[1].node_id
        span = packed.packet_of_node[fat_id]
        assert len(span) > 1
        assert list(span) == list(range(span[0], span[-1] + 1))  # contiguous

    def test_node_after_fat_node_starts_fresh(self):
        root = IndexNode(0, "a")
        root.add_child(IndexNode(0, "b", doc_ids=tuple(range(200))))
        root.add_child(IndexNode(0, "c"))
        assign_preorder_ids(root)
        index = CompactIndex(root)
        packed = pack_index(index, one_tier=True)
        fat_span = packed.packet_of_node[1]
        assert packed.packet_of_node[2][0] == fat_span[-1] + 1


class TestStrategies:
    def test_one_per_packet_uses_one_packet_per_small_node(self):
        index = paper_index()
        packed = pack_index(index, one_tier=True, strategy=PackingStrategy.ONE_PER_PACKET)
        assert packed.packet_count >= index.node_count

    def test_bfs_covers_all_nodes(self):
        index = paper_index()
        packed = pack_index(index, one_tier=True, strategy=PackingStrategy.BFS)
        assert set(packed.packet_of_node) == {n.node_id for n in index.nodes}

    def test_bfs_order_is_level_order(self):
        index = paper_index()
        packed = pack_index(index, one_tier=True, strategy=PackingStrategy.BFS)
        depths = {n.node_id: len(n.path_from_root()) for n in index.nodes}
        order_depths = [depths[node_id] for node_id in packed.node_order]
        assert order_depths == sorted(order_depths)

    def test_greedy_never_worse_than_one_per_packet(self):
        index = paper_index()
        greedy = pack_index(index, one_tier=True)
        naive = pack_index(index, one_tier=True, strategy=PackingStrategy.ONE_PER_PACKET)
        assert greedy.packet_count <= naive.packet_count


class TestPackingProperties:
    @given(document_collections())
    def test_invariants_on_random_indexes(self, docs):
        index = build_full_ci(docs)
        for one_tier in (True, False):
            packed = pack_index(index, one_tier=one_tier)
            # Every node exactly once, spans contiguous and in range.
            assert set(packed.packet_of_node) == {n.node_id for n in index.nodes}
            for span in packed.packet_of_node.values():
                assert list(span) == list(range(span[0], span[-1] + 1))
                assert 0 <= span[0] and span[-1] < packed.packet_count
            # No packet over-filled: sum of single-packet nodes fits.
            fill = {}
            for node in index.nodes:
                span = packed.packet_of_node[node.node_id]
                if len(span) == 1:
                    fill.setdefault(span[0], 0)
                    fill[span[0]] += index.node_bytes(node, one_tier)
            assert all(used <= packed.packet_bytes for used in fill.values())

    @given(document_collections())
    def test_used_bytes_equals_index_size(self, docs):
        index = build_full_ci(docs)
        packed = pack_index(index, one_tier=True)
        assert packed.used_bytes == index.size_bytes(one_tier=True)
