"""Unit and property tests for byte-exact index encoding."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import CompactIndex, build_full_ci
from repro.index.encoding import (
    IndexEncodingError,
    LabelTable,
    decode_index,
    decode_offset_list,
    encode_index,
    encode_offset_list,
)
from repro.index.nodes import IndexNode, assign_preorder_ids
from repro.index.sizes import SizeModel
from repro.index.twotier import OffsetList
from tests.strategies import document_collections


def paper_index() -> CompactIndex:
    from tests.xpath.test_evaluator import paper_documents

    return build_full_ci(paper_documents())


def tree_signature(index: CompactIndex):
    return sorted(
        (path, node.doc_ids) for node, path in index.root.iter_with_paths()
    )


class TestLabelTable:
    def test_from_index(self):
        table = LabelTable.from_index(paper_index())
        assert set(table.labels) == {"a", "b", "c"}

    def test_duplicate_rejected(self):
        with pytest.raises(IndexEncodingError):
            LabelTable(("a", "a"))

    def test_id_round_trip(self):
        table = LabelTable(("a", "b"))
        assert table.label_of(table.id_of("b")) == "b"

    def test_unknown_label(self):
        with pytest.raises(IndexEncodingError):
            LabelTable(("a",)).id_of("zzz")
        with pytest.raises(IndexEncodingError):
            LabelTable(("a",)).label_of(7)

    def test_encode_decode(self):
        table = LabelTable(("alpha", "beta", "body-content"))
        assert LabelTable.decode(table.encode()) == table


class TestEncodeIndex:
    def test_size_matches_model_one_tier(self):
        index = paper_index()
        blob = encode_index(index, one_tier=True)
        assert len(blob) == index.size_bytes(one_tier=True)

    def test_size_matches_model_first_tier(self):
        index = paper_index()
        blob = encode_index(index, one_tier=False)
        assert len(blob) == index.size_bytes(one_tier=False)

    def test_round_trip_one_tier(self):
        index = paper_index()
        table = LabelTable.from_index(index)
        blob = encode_index(index, table, one_tier=True)
        decoded, offsets = decode_index(
            blob, table, one_tier=True, root_label=index.root.label
        )
        assert tree_signature(decoded) == tree_signature(index)
        assert set(offsets) == set(index.annotated_doc_ids())

    def test_round_trip_first_tier(self):
        index = paper_index()
        table = LabelTable.from_index(index)
        blob = encode_index(index, table, one_tier=False)
        decoded, offsets = decode_index(
            blob, table, one_tier=False, root_label=index.root.label
        )
        assert tree_signature(decoded) == tree_signature(index)
        assert offsets == {}

    def test_doc_offsets_embedded(self):
        index = paper_index()
        table = LabelTable.from_index(index)
        wanted = {doc_id: 1000 + doc_id for doc_id in index.annotated_doc_ids()}
        blob = encode_index(index, table, one_tier=True, doc_offsets=wanted)
        _decoded, offsets = decode_index(
            blob, table, one_tier=True, root_label=index.root.label
        )
        assert offsets == wanted

    def test_doc_id_overflow_rejected(self):
        root = IndexNode(0, "a", doc_ids=(70_000,))
        assign_preorder_ids(root)
        with pytest.raises(IndexEncodingError):
            encode_index(CompactIndex(root))

    def test_custom_size_model_rejected(self):
        root = IndexNode(0, "a")
        assign_preorder_ids(root)
        index = CompactIndex(root, size_model=SizeModel(doc_id_bytes=3))
        with pytest.raises(IndexEncodingError):
            encode_index(index)

    @given(document_collections())
    def test_round_trip_random(self, docs):
        index = build_full_ci(docs)
        table = LabelTable.from_index(index)
        for one_tier in (True, False):
            blob = encode_index(index, table, one_tier=one_tier)
            assert len(blob) == index.size_bytes(one_tier=one_tier)
            decoded, _ = decode_index(
                blob, table, one_tier=one_tier, root_label=index.root.label
            )
            assert tree_signature(decoded) == tree_signature(index)


class TestOffsetListEncoding:
    def test_round_trip(self):
        offsets = OffsetList.from_mapping({1: 100, 5: 500, 9: 64_000})
        blob = encode_offset_list(offsets)
        assert len(blob) == offsets.size_bytes
        assert decode_offset_list(blob).entries == offsets.entries

    def test_empty_list(self):
        offsets = OffsetList(())
        assert decode_offset_list(encode_offset_list(offsets)).entries == ()

    @given(
        st.dictionaries(
            st.integers(0, 0xFFFF), st.integers(0, 0xFFFFFFFF), max_size=40
        )
    )
    def test_round_trip_random(self, mapping):
        offsets = OffsetList.from_mapping(mapping)
        assert decode_offset_list(encode_offset_list(offsets)).entries == offsets.entries
