"""Unit tests for the experiment runner.

These run at a deliberately tiny custom scale so the full pipeline (both
experiment primitives) is exercised in seconds; the real scales are
executed by the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    BENCH_SCALE,
    ExperimentContext,
    PAPER_SCALE,
    SCALES,
    Scale,
)


@pytest.fixture(scope="module")
def tiny_context():
    context = ExperimentContext(scale="bench")
    # Shrink in place for test speed: fewer documents, small cycles.
    context.scale = Scale(
        name="tiny",
        document_count=50,
        n_q_default=20,
        n_q_sweep=(10, 20),
        p_sweep=(0.0, 0.2),
        d_q_sweep=(4, 8),
        arrival_cycles=2,
        cycle_data_capacity=40_000,
    )
    return context


class TestScales:
    def test_registry(self):
        assert set(SCALES) == {"paper", "bench"}
        assert PAPER_SCALE.document_count == 1000
        assert BENCH_SCALE.document_count < PAPER_SCALE.document_count

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentContext(scale="galactic")


class TestIndexSizePoint:
    def test_fields_consistent(self, tiny_context):
        point = tiny_context.index_size_point(n_q=10)
        assert point.n_q == 10
        assert point.pci_bytes <= point.ci_bytes
        assert point.pci_first_tier_bytes <= point.pci_bytes
        assert point.two_tier_bytes == point.pci_first_tier_bytes + point.offset_list_bytes
        assert 0 < point.pci_to_ci <= 1
        assert 0 < point.two_tier_to_data < point.ci_to_data

    def test_collection_cached(self, tiny_context):
        first = tiny_context.documents
        second = tiny_context.documents
        assert first is second


class TestTuningPoint:
    def test_fields_consistent(self, tiny_context):
        point = tiny_context.tuning_point(n_q=10)
        assert point.completed
        assert point.two_tier_lookup > 0
        assert point.one_tier_lookup > point.two_tier_lookup
        assert point.improvement > 1
        assert point.mean_cycles >= 1
