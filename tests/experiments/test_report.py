"""Unit tests for table rendering."""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table("Title", ("a", "b"), [(1, 2.5), (300, 0.125)])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert set(lines[1]) == {"="}
        assert "a" in lines[2] and "b" in lines[2]
        assert len(lines) == 6

    def test_number_formatting(self):
        text = format_table("T", ("x",), [(1234567,), (0.123456,), (12.345,)])
        assert "1,234,567" in text
        assert "0.123" in text
        assert "12.3" in text

    def test_note_appended(self):
        text = format_table("T", ("x",), [(1,)], note="hello note")
        assert text.endswith("hello note")

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table("T", ("a", "b"), [(1,)])

    def test_alignment(self):
        text = format_table("T", ("col",), [(5,), (500,)])
        rows = text.splitlines()[-2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("500")
        assert len(rows[0]) == len(rows[1])
