"""Tests for the ``python -m repro.experiments`` entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


class TestExperimentsCLI:
    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--only", "fig99z"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic"])

    def test_single_static_figure(self, capsys):
        code = main(["--scale", "bench", "--only", "table2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "regenerated in" in out

    def test_multiple_figures(self, capsys):
        code = main(["--scale", "bench", "--only", "table2,headline_ratios"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Headline ratios" in out

    def test_dblp_dtd_flag(self, capsys):
        code = main(["--scale", "bench", "--dtd", "dblp", "--only", "table2"])
        assert code == 0
        assert "documents" in capsys.readouterr().out
