"""Tests for the figure harness (tiny scale; shapes at full scale are the
benchmark suite's job)."""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.runner import ExperimentContext, Scale


@pytest.fixture(scope="module")
def tiny_context():
    context = ExperimentContext(scale="bench")
    context.scale = Scale(
        name="tiny",
        document_count=50,
        n_q_default=20,
        n_q_sweep=(10, 20),
        p_sweep=(0.0, 0.2),
        d_q_sweep=(4, 8),
        arrival_cycles=2,
        cycle_data_capacity=40_000,
    )
    return context


class TestStaticFigures:
    def test_table2(self, tiny_context):
        figure = figures.table2(tiny_context)
        assert figure.rows
        assert "Table 2" in figure.as_text()

    def test_fig9a_rows(self, tiny_context):
        figure = figures.fig9a(tiny_context)
        assert [row[0] for row in figure.rows] == [10, 20]
        for row in figure.rows:
            ci_bytes, pci_bytes = row[1], row[2]
            assert pci_bytes <= ci_bytes

    def test_fig9b_rows(self, tiny_context):
        figure = figures.fig9b(tiny_context)
        assert [row[0] for row in figure.rows] == [0.0, 0.2]

    def test_fig9c_rows(self, tiny_context):
        figure = figures.fig9c(tiny_context)
        assert [row[0] for row in figure.rows] == [4, 8]

    def test_fig10_two_tier_smaller(self, tiny_context):
        figure = figures.fig10(tiny_context)
        for row in figure.rows:
            one_tier, two_tier = row[1], row[2]
            assert two_tier < one_tier
            assert 0 < row[5] < 1  # saving fraction

    def test_headline_ratios_ordering(self, tiny_context):
        figure = figures.headline_ratios(tiny_context)
        ratios = {row[0]: row[2] for row in figure.rows}
        assert ratios["per-document baseline"] > ratios["CI (one-tier)"]
        assert ratios["CI (one-tier)"] >= ratios["PCI (one-tier)"]
        assert ratios["PCI (one-tier)"] > ratios["two-tier (L_I + L_O)"]


class TestDynamicFigures:
    def test_fig11a(self, tiny_context):
        figure = figures.fig11a(tiny_context)
        assert len(figure.rows) == 2
        for row in figure.rows:
            one, two = row[1], row[2]
            assert two < one  # two-tier always cheaper at this scale

    def test_cycles_per_query(self, tiny_context):
        figure = figures.cycles_per_query(tiny_context)
        values = dict(figure.rows)
        assert values["mean cycles listened"] >= 1
        assert values["run drained completely"] == 1


class TestExtensionFigures:
    def test_ext_access(self, tiny_context):
        from repro.experiments.extensions import ext_access

        figure = ext_access(tiny_context)
        assert len(figure.rows) == 2
        for row in figure.rows:
            one, two = row[1], row[2]
            # Access time is essentially protocol-invariant.
            assert abs(one - two) / max(one, two) < 0.05

    def test_ext_energy(self, tiny_context):
        from repro.experiments.extensions import ext_energy

        figure = ext_energy(tiny_context)
        totals = {row[0]: row[3] for row in figure.rows}
        assert totals["naive"] >= totals["two-tier"]
        actives = {row[0]: row[1] for row in figure.rows}
        assert actives["two-tier"] < actives["one-tier"] < actives["naive"]

    def test_ext_skew(self, tiny_context):
        from repro.experiments.extensions import ext_skew

        figure = ext_skew(tiny_context)
        assert [row[0] for row in figure.rows] == [0.0, 0.5, 1.0, 1.5]
        # Skew never inflates the index.
        assert figure.rows[-1][1] <= figure.rows[0][1] * 1.1


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "table2",
            "fig9a",
            "fig9b",
            "fig9c",
            "fig10",
            "fig11a",
            "fig11b",
            "fig11c",
            "headline_ratios",
            "cycles_per_query",
            "ext_access",
            "ext_loss",
            "ext_skew",
            "ext_energy",
        }
        assert set(figures.ALL_FIGURES) == expected
