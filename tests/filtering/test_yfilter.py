"""Unit, differential and property tests for the YFilter engine."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro.filtering.events import Event, EventKind
from repro.filtering.yfilter import FilterResult, YFilterEngine
from repro.xmlkit.model import XMLDocument
from repro.xpath.evaluator import evaluate_on_document, result_table
from repro.xpath.parser import parse_query
from tests.strategies import queries, xml_elements


class TestFilterDocument:
    def test_paper_example(self):
        from tests.xpath.test_evaluator import paper_documents

        docs = paper_documents()
        texts = ["/a/b/a", "/a/c/a", "/a//c", "/a/b", "/a/c/*", "/a/c/a"]
        engine = YFilterEngine.from_queries([parse_query(t) for t in texts])
        result = engine.filter_collection(docs)
        assert result.docs_per_query[0] == {0, 1}  # q1
        assert result.docs_per_query[1] == {3, 4}  # q2
        assert result.docs_per_query[2] == {1, 2, 3, 4}  # q3
        assert result.docs_per_query[3] == {0, 1, 2, 4}  # q4
        assert result.docs_per_query[4] == {1, 3, 4}  # q5
        assert result.docs_per_query[5] == {3, 4}  # q6 == q2

    def test_streaming_mode_equals_path_mode(self, nitf_docs, nitf_queries):
        engine = YFilterEngine.from_queries(nitf_queries)
        fast = engine.filter_collection(nitf_docs)
        slow = engine.filter_collection(nitf_docs, streaming=True)
        assert fast.docs_per_query == slow.docs_per_query

    def test_matches_naive_evaluator(self, nitf_docs, nitf_queries):
        engine = YFilterEngine.from_queries(nitf_queries)
        result = engine.filter_collection(nitf_docs)
        oracle = result_table(nitf_queries, nitf_docs)
        for index, query in enumerate(nitf_queries):
            assert result.docs_per_query[index] == oracle[query], str(query)

    def test_unbalanced_stream_rejected(self):
        engine = YFilterEngine.from_queries([parse_query("/a")])
        with pytest.raises(ValueError):
            engine.filter_events([Event(EventKind.END, "a")])
        with pytest.raises(ValueError):
            engine.filter_events([Event(EventKind.START, "a")])

    @given(
        st.lists(queries(), min_size=1, max_size=4),
        xml_elements(),
    )
    def test_differential_vs_evaluator(self, query_list, element):
        """The core correctness property: NFA == naive tree walk, for any
        query set over any tree."""
        document = XMLDocument(doc_id=0, root=element)
        engine = YFilterEngine.from_queries(query_list)
        matched = engine.filter_document(document)
        expected = {
            index
            for index, query in enumerate(query_list)
            if evaluate_on_document(query, document)
        }
        assert matched == expected

    @given(st.lists(queries(), min_size=1, max_size=4), xml_elements())
    def test_path_mode_differential(self, query_list, element):
        document = XMLDocument(doc_id=0, root=element)
        engine = YFilterEngine.from_queries(query_list)
        assert engine.filter_document(document) == engine.filter_document_by_paths(
            document
        )


class TestFilterResult:
    def test_inverse_mapping(self):
        result = FilterResult(docs_per_query={0: {1, 2}, 1: {2}})
        assert result.queries_per_doc == {1: {0}, 2: {0, 1}}

    def test_requested_doc_ids(self):
        result = FilterResult(docs_per_query={0: {1, 2}, 1: set()})
        assert result.requested_doc_ids == {1, 2}

    def test_result_size(self):
        result = FilterResult(docs_per_query={0: {1, 2}})
        assert result.result_size(0) == 2
        assert result.result_size(99) == 0


class TestMatchPaths:
    def test_shares_prefix_work(self):
        engine = YFilterEngine.from_queries([parse_query("/a/b"), parse_query("/a/c")])
        matched = engine.match_paths([("a", "b"), ("a", "c"), ("a",)])
        assert matched == {0, 1}

    def test_empty_paths(self):
        engine = YFilterEngine.from_queries([parse_query("/a")])
        assert engine.match_paths([]) == set()
