"""Unit tests for SAX-style event streams."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.filtering.events import (
    Event,
    EventKind,
    document_events,
    element_events,
    validate_event_stream,
)
from repro.xmlkit.model import XMLDocument, build_element
from tests.strategies import xml_elements


class TestElementEvents:
    def test_single_element(self):
        events = list(element_events(build_element("a")))
        assert events == [Event(EventKind.START, "a"), Event(EventKind.END, "a")]

    def test_nesting_order(self):
        tree = build_element("a", build_element("b"), build_element("c"))
        kinds = [(e.kind.value, e.tag) for e in element_events(tree)]
        assert kinds == [
            ("start", "a"),
            ("start", "b"),
            ("end", "b"),
            ("start", "c"),
            ("end", "c"),
            ("end", "a"),
        ]

    def test_deep_tree_does_not_recurse(self):
        # 5000 levels would blow Python's default recursion limit if the
        # generator were recursive.
        root = build_element("a")
        node = root
        for _ in range(5000):
            node = node.append(build_element("a"))
        assert sum(1 for _ in element_events(root)) == 2 * 5001

    @given(xml_elements())
    def test_streams_are_balanced(self, element):
        count = validate_event_stream(element_events(element))
        assert count == element.element_count()


class TestDocumentEvents:
    def test_document_streams_root(self):
        doc = XMLDocument(0, build_element("a", build_element("b")))
        tags = [e.tag for e in document_events(doc)]
        assert tags == ["a", "b", "b", "a"]


class TestValidateEventStream:
    def test_unbalanced_end(self):
        with pytest.raises(ValueError):
            validate_event_stream(iter([Event(EventKind.END, "a")]))

    def test_mismatched_tags(self):
        stream = [Event(EventKind.START, "a"), Event(EventKind.END, "b")]
        with pytest.raises(ValueError):
            validate_event_stream(iter(stream))

    def test_unclosed(self):
        with pytest.raises(ValueError):
            validate_event_stream(iter([Event(EventKind.START, "a")]))
