"""Unit tests for the shared-path NFA construction and moves."""

from __future__ import annotations

import pytest

from repro.filtering.nfa import SharedPathNFA
from repro.xpath.parser import parse_query


def nfa_for(*texts: str) -> SharedPathNFA:
    nfa = SharedPathNFA()
    for index, text in enumerate(texts):
        nfa.add_query(index, parse_query(text))
    return nfa


def run(nfa: SharedPathNFA, labels):
    states = nfa.initial_states()
    for label in labels:
        states = nfa.move(states, label)
    return states


class TestConstruction:
    def test_prefix_sharing(self):
        # /a/b and /a/c share the state for /a.
        shared = nfa_for("/a/b", "/a/c")
        separate = nfa_for("/a/b")
        # shared adds only one extra state for the 'c' branch.
        assert shared.state_count == separate.state_count + 1

    def test_identical_queries_share_all_states(self):
        nfa = nfa_for("/a/b", "/a/b")
        assert nfa.state_count == nfa_for("/a/b").state_count
        assert nfa.query_count == 2

    def test_duplicate_query_id_rejected(self):
        nfa = SharedPathNFA()
        nfa.add_query(1, parse_query("/a"))
        with pytest.raises(ValueError):
            nfa.add_query(1, parse_query("/b"))

    def test_frozen_rejects_additions(self):
        nfa = nfa_for("/a")
        nfa.freeze()
        with pytest.raises(RuntimeError):
            nfa.add_query(99, parse_query("/b"))

    def test_add_queries_assigns_consecutive_ids(self):
        nfa = SharedPathNFA()
        ids = nfa.add_queries([parse_query("/a"), parse_query("/b")])
        assert ids == [0, 1]
        more = nfa.add_queries([parse_query("/c")])
        assert more == [2]

    def test_descendant_creates_self_loop_state(self):
        plain = nfa_for("/a/b").state_count
        with_desc = nfa_for("/a//b").state_count
        assert with_desc == plain + 1  # the loop state

    def test_describe_mentions_queries(self):
        text = nfa_for("/a//b").describe()
        assert "states" in text and "accepts" in text


class TestMoves:
    def test_simple_chain_accepts(self):
        nfa = nfa_for("/a/b")
        states = run(nfa, ["a", "b"])
        assert nfa.accepted_queries(states) == {0}

    def test_wrong_label_dies(self):
        nfa = nfa_for("/a/b")
        assert not run(nfa, ["a", "c"])  # dead configuration is falsy

    def test_wildcard_transition(self):
        nfa = nfa_for("/a/*")
        assert nfa.accepted_queries(run(nfa, ["a", "zzz"])) == {0}

    def test_descendant_skips(self):
        nfa = nfa_for("/a//c")
        assert nfa.accepted_queries(run(nfa, ["a", "x", "y", "c"])) == {0}

    def test_descendant_matches_direct_child(self):
        nfa = nfa_for("/a//c")
        assert nfa.accepted_queries(run(nfa, ["a", "c"])) == {0}

    def test_leading_descendant(self):
        nfa = nfa_for("//c")
        assert nfa.accepted_queries(run(nfa, ["a", "b", "c"])) == {0}
        assert nfa.accepted_queries(run(nfa, ["c"])) == {0}

    def test_multiple_queries_disambiguated(self):
        nfa = nfa_for("/a/b", "/a/c", "/a//c")
        assert nfa.accepted_queries(run(nfa, ["a", "b"])) == {0}
        assert nfa.accepted_queries(run(nfa, ["a", "c"])) == {1, 2}
        assert nfa.accepted_queries(run(nfa, ["a", "b", "c"])) == {2}

    def test_is_accepting(self):
        nfa = nfa_for("/a")
        assert nfa.is_accepting(run(nfa, ["a"]))
        assert not nfa.is_accepting(run(nfa, ["b"]))

    def test_epsilon_closure_includes_descendant_states(self):
        nfa = nfa_for("//a")
        initial = nfa.initial_states()
        assert len(initial) == 2  # start + its loop state
