"""Unit and property tests for the lazily determinised query DFA."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.filtering.dfa import LazyQueryDFA
from repro.xpath.parser import parse_query
from tests.strategies import label_paths, queries


class TestLazyQueryDFA:
    def test_accepts_path(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a/b"), parse_query("/a//c")])
        assert dfa.accepts_path(("a", "b"))
        assert dfa.accepts_path(("a", "x", "c"))
        assert not dfa.accepts_path(("a",))
        assert not dfa.accepts_path(("b",))

    def test_dead_state_is_not_live(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a/b")])
        dead = dfa.run(("z",))
        assert not dfa.is_live(dead)
        assert dfa.is_live(dfa.run(("a",)))

    def test_descendant_states_stay_live(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a//b")])
        assert dfa.is_live(dfa.run(("a", "x", "y", "z")))

    def test_accepted_queries(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a"), parse_query("//a")])
        state = dfa.run(("a",))
        assert dfa.accepted_queries(state) == {0, 1}

    def test_transitions_memoised(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a/b")])
        dfa.run(("a", "b"))
        first = dfa.materialised_transitions
        dfa.run(("a", "b"))
        assert dfa.materialised_transitions == first  # cache hit, no growth

    def test_dead_short_circuit(self):
        dfa = LazyQueryDFA.from_queries([parse_query("/a/b")])
        state = dfa.run(("z", "a", "b", "c"))
        assert not state  # dead configuration is falsy

    @given(st.lists(queries(), min_size=1, max_size=4), label_paths)
    def test_matches_query_semantics(self, query_list, path):
        """DFA acceptance == direct matches_path, for every query."""
        dfa = LazyQueryDFA.from_queries(query_list)
        state = dfa.run(path)
        accepted = dfa.accepted_queries(state)
        expected = {
            index
            for index, query in enumerate(query_list)
            if query.matches_path(path)
        }
        assert accepted == expected

    @given(st.lists(queries(), min_size=1, max_size=3), label_paths)
    def test_liveness_matches_viable_prefix(self, query_list, path):
        """A state is live iff the path is a viable prefix of some query."""
        dfa = LazyQueryDFA.from_queries(query_list)
        live = dfa.is_live(dfa.run(path))
        viable = any(query.is_viable_prefix(path) for query in query_list)
        assert live == viable
