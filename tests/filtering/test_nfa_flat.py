"""Differential tests: flat SharedPathNFA vs the dict-based reference.

The flattened automaton (`repro.filtering.nfa`) must be observationally
identical to the reference implementation it replaced
(`repro.filtering.nfa_reference`): same configurations (as sets), same
accepted queries, same acceptance verdicts, on any query set and any
event stream.  Hypothesis drives both machines in lockstep.

The second half pins the allocation discipline of the scratch-buffer
path: compiling happens exactly once per automaton, and steady-state
`move`/`epsilon_closure` never reallocate the scratch arrays.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filtering.nfa import SharedPathNFA
from repro.filtering.nfa_reference import ReferenceSharedPathNFA
from repro.xpath.parser import parse_query
from tests.strategies import labels, queries

#: Event streams as flat label lists: each label is a start event pushed
#: onto an ever-deepening path.  Depth-first shapes are exercised by the
#: branchy variant below.
event_streams = st.lists(labels, min_size=0, max_size=10)

#: A branchy traversal: (depth-to-pop, label) pairs replayed against a
#: configuration stack, like the streaming engine's start/end handling.
branchy_streams = st.lists(
    st.tuples(st.integers(0, 3), labels), min_size=0, max_size=12
)


def build_both(query_list):
    flat = SharedPathNFA()
    reference = ReferenceSharedPathNFA()
    flat.add_queries(query_list)
    reference.add_queries(query_list)
    return flat.freeze(), reference.freeze()


class TestDifferential:
    @given(st.lists(queries(), min_size=1, max_size=6), event_streams)
    def test_linear_runs_agree(self, query_list, stream):
        flat, reference = build_both(query_list)
        flat_config = flat.initial_states()
        ref_config = reference.initial_states()
        assert set(flat_config) == set(ref_config)
        for tag in stream:
            flat_config = flat.move(flat_config, tag)
            ref_config = reference.move(ref_config, tag)
            assert set(flat_config) == set(ref_config)
            assert flat.accepted_queries(flat_config) == reference.accepted_queries(
                ref_config
            )
            assert flat.is_accepting(flat_config) == reference.is_accepting(ref_config)

    @given(st.lists(queries(), min_size=1, max_size=6), branchy_streams)
    def test_branchy_runs_agree(self, query_list, stream):
        """Tree-shaped traversals with backtracking agree too."""
        flat, reference = build_both(query_list)
        flat_stack = [flat.initial_states()]
        ref_stack = [reference.initial_states()]
        flat_matched = set()
        ref_matched = set()
        for pops, tag in stream:
            for _ in range(min(pops, len(flat_stack) - 1)):
                flat_stack.pop()
                ref_stack.pop()
            flat_stack.append(
                flat.move_accepting(flat_stack[-1], tag, flat_matched)
            )
            ref_config = reference.move(ref_stack[-1], tag)
            ref_matched.update(reference.accepted_queries(ref_config))
            ref_stack.append(ref_config)
            assert set(flat_stack[-1]) == set(ref_stack[-1])
        assert flat_matched == ref_matched

    @given(st.lists(queries(), min_size=1, max_size=6), event_streams)
    def test_epsilon_closure_agrees(self, query_list, stream):
        flat, reference = build_both(query_list)
        config = flat.initial_states()
        for tag in stream:
            config = flat.move(config, tag)
        assert set(flat.epsilon_closure(config)) == set(
            reference.epsilon_closure(frozenset(config))
        )

    @given(st.lists(queries(), min_size=1, max_size=6))
    def test_construction_shape_identical(self, query_list):
        """Same trie: state counts, start state, registered queries."""
        flat, reference = build_both(query_list)
        assert flat.state_count == reference.state_count
        assert flat.start_state == reference.start_state
        assert flat.queries().keys() == reference.queries().keys()


class TestConfigurationForm:
    def test_configurations_are_sorted_tuples(self):
        nfa = SharedPathNFA()
        nfa.add_queries([parse_query("//a"), parse_query("/a//b")])
        config = nfa.initial_states()
        assert isinstance(config, tuple)
        assert list(config) == sorted(set(config))
        config = nfa.move(config, "a")
        assert isinstance(config, tuple)
        assert list(config) == sorted(set(config))

    def test_dead_configuration_is_falsy_and_hashable(self):
        nfa = SharedPathNFA()
        nfa.add_query(0, parse_query("/a"))
        dead = nfa.move(nfa.initial_states(), "z")
        assert not dead
        assert hash(dead) == hash(())


class TestScratchAllocations:
    def test_compile_happens_once(self):
        nfa = SharedPathNFA()
        nfa.add_queries([parse_query("/a//b"), parse_query("//c/*")])
        assert nfa.scratch_allocations == 0  # compilation is lazy
        config = nfa.initial_states()
        assert nfa.scratch_allocations == 1
        for _ in range(50):
            config = nfa.move(config, "a")
            nfa.accepted_queries(config)
            nfa.epsilon_closure(config)
        assert nfa.scratch_allocations == 1  # steady state never reallocates

    def test_adding_queries_invalidates_compiled_form(self):
        nfa = SharedPathNFA()
        nfa.add_query(0, parse_query("/a"))
        nfa.initial_states()
        assert nfa.scratch_allocations == 1
        nfa.add_query(1, parse_query("//b"))
        nfa.initial_states()
        assert nfa.scratch_allocations == 2  # recompiled for the new query

    def test_move_allocates_no_sets(self):
        """The hot loop builds only the result tuple -- no set/frozenset."""
        import tracemalloc

        nfa = SharedPathNFA()
        nfa.add_queries(
            [parse_query(q) for q in ("//a/b", "/a//c", "//*/d", "/a/b/c")]
        )
        config = nfa.initial_states()
        stream = ["a", "b", "c", "d", "e"] * 40
        for tag in stream:  # warm every (state, label) pair first
            config = nfa.move(config, tag)
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for tag in stream:
            config = nfa.move(config, tag)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        # Only small result tuples may remain live; the dict-based engine
        # leaked a frozenset per event plus per-move working sets.  Bound
        # the *net* new allocations attributable to this module.
        nfa_lines = [
            stat
            for stat in after.compare_to(before, "lineno")
            if stat.traceback and "nfa.py" in stat.traceback[0].filename
        ]
        leaked = sum(max(stat.size_diff, 0) for stat in nfa_lines)
        # one live config tuple (a few ints) is all that may remain
        assert leaked < 512, f"move() leaked {leaked} bytes across 200 events"
