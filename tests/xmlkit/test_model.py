"""Unit tests for the element-tree model."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.xmlkit.model import (
    XMLDocument,
    XMLElement,
    build_element,
    collection_size_bytes,
)
from tests.strategies import xml_elements


def make_tree() -> XMLElement:
    #        a
    #      / | \
    #     b  b  c
    #    /|     |
    #   d e     d
    return build_element(
        "a",
        build_element("b", build_element("d"), build_element("e")),
        build_element("b"),
        build_element("c", build_element("d")),
    )


class TestXMLElement:
    def test_empty_tag_rejected(self):
        with pytest.raises(ValueError):
            XMLElement("")

    def test_append_sets_parent(self):
        parent = XMLElement("a")
        child = XMLElement("b")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_rejects_reparenting(self):
        parent = XMLElement("a")
        child = XMLElement("b")
        parent.append(child)
        with pytest.raises(ValueError):
            XMLElement("c").append(child)

    def test_child_returns_first_match(self):
        tree = make_tree()
        first_b = tree.child("b")
        assert first_b is tree.children[0]
        assert tree.child("nope") is None

    def test_find_all(self):
        tree = make_tree()
        assert len(tree.find_all("b")) == 2
        assert tree.find_all("zzz") == []

    def test_iter_is_preorder(self):
        tags = [node.tag for node in make_tree().iter()]
        assert tags == ["a", "b", "d", "e", "b", "c", "d"]

    def test_iter_with_paths(self):
        paths = [path for _n, path in make_tree().iter_with_paths()]
        assert paths[0] == ("a",)
        assert ("a", "b", "d") in paths
        assert ("a", "c", "d") in paths
        assert len(paths) == 7  # one per element

    def test_path_from_root(self):
        tree = make_tree()
        deep = tree.children[0].children[1]  # the "e"
        assert deep.path_from_root() == ("a", "b", "e")

    def test_depth(self):
        assert make_tree().depth() == 3
        assert XMLElement("x").depth() == 1

    def test_element_count(self):
        assert make_tree().element_count() == 7

    def test_distinct_label_paths_dedupes(self):
        distinct = make_tree().distinct_label_paths()
        # ("a","b") occurs twice in the tree but once in the distinct set.
        assert distinct.count(("a", "b")) == 1
        assert set(distinct) == {
            ("a",),
            ("a", "b"),
            ("a", "b", "d"),
            ("a", "b", "e"),
            ("a", "b"),
            ("a", "c"),
            ("a", "c", "d"),
        } - set()  # normalised by set()

    def test_distinct_label_paths_order_is_first_occurrence(self):
        distinct = make_tree().distinct_label_paths()
        assert distinct[0] == ("a",)
        assert distinct.index(("a", "b")) < distinct.index(("a", "c"))

    def test_structural_equality(self):
        assert make_tree().structurally_equal(make_tree())

    def test_structural_inequality_on_text(self):
        left = build_element("a", text="x")
        right = build_element("a", text="y")
        assert not left.structurally_equal(right)

    def test_structural_inequality_on_children(self):
        assert not make_tree().structurally_equal(build_element("a"))

    @given(xml_elements())
    def test_distinct_paths_are_subset_of_all_paths(self, element):
        all_paths = list(element.label_paths())
        distinct = element.distinct_label_paths()
        assert set(distinct) == set(all_paths)
        assert len(distinct) == len(set(all_paths))

    @given(xml_elements())
    def test_every_element_reachable_by_its_path(self, element):
        for node, path in element.iter_with_paths():
            assert node.path_from_root() == path


class TestXMLDocument:
    def test_negative_doc_id_rejected(self):
        with pytest.raises(ValueError):
            XMLDocument(doc_id=-1, root=XMLElement("a"))

    def test_size_is_cached(self):
        doc = XMLDocument(doc_id=0, root=make_tree())
        first = doc.size_bytes
        assert doc.size_bytes == first
        assert doc._cached_size == first

    def test_invalidate_size(self):
        doc = XMLDocument(doc_id=0, root=make_tree())
        before = doc.size_bytes
        doc.root.append(XMLElement("extra"))
        doc.invalidate_size()
        assert doc.size_bytes > before

    def test_collection_size(self):
        docs = [
            XMLDocument(doc_id=0, root=build_element("a")),
            XMLDocument(doc_id=1, root=build_element("b")),
        ]
        assert collection_size_bytes(docs) == sum(d.size_bytes for d in docs)

    def test_helpers_delegate(self):
        doc = XMLDocument(doc_id=3, root=make_tree())
        assert doc.element_count() == 7
        assert doc.depth() == 3
        assert ("a", "c", "d") in doc.distinct_label_paths()


class TestBuildElement:
    def test_attributes_via_kwargs(self):
        element = build_element("a", x="1", y="2")
        assert element.attributes == {"x": "1", "y": "2"}

    def test_text_kwarg(self):
        assert build_element("a", text="hello").text == "hello"
