"""Tests for the real-DTD-file parser."""

from __future__ import annotations

import pytest

from repro.xmlkit.dtd import Repetition
from repro.xmlkit.dtd_parser import DTDParseError, load_dtd, parse_dtd
from repro.xmlkit.generator import DocumentGenerator, GeneratorConfig


SIMPLE = """
<!-- a tiny article DTD -->
<!ELEMENT article (title, section+, appendix?)>
<!ELEMENT appendix (para*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT section (title, para*)>
<!ELEMENT para (#PCDATA | emph | ref)*>
<!ELEMENT emph (#PCDATA)>
<!ELEMENT ref EMPTY>
<!ATTLIST ref target CDATA #REQUIRED
              kind (internal|external) "internal">
<!ATTLIST article id ID #IMPLIED>
"""


class TestParseSimple:
    def test_elements_declared(self):
        dtd = parse_dtd(SIMPLE)
        assert set(dtd.element_names()) == {
            "article", "appendix", "title", "section", "para", "emph", "ref",
        }

    def test_root_inferred(self):
        assert parse_dtd(SIMPLE).root == "article"

    def test_explicit_root(self):
        assert parse_dtd(SIMPLE, root="section").root == "section"

    def test_unknown_root_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd(SIMPLE, root="nope")

    def test_sequence_particles(self):
        dtd = parse_dtd(SIMPLE)
        particles = dtd["article"].particles
        assert [p.alternatives for p in particles] == [
            ("title",), ("section",), ("appendix",),
        ] or [p.alternatives[0] for p in particles[:2]] == ["title", "section"]
        assert particles[1].repetition is Repetition.PLUS
        assert particles[2].repetition is Repetition.OPTIONAL

    def test_pcdata_sets_has_text(self):
        dtd = parse_dtd(SIMPLE)
        assert dtd["title"].has_text
        assert not dtd["ref"].has_text

    def test_mixed_content(self):
        dtd = parse_dtd(SIMPLE)
        para = dtd["para"]
        assert para.has_text
        assert len(para.particles) == 1
        assert set(para.particles[0].alternatives) == {"emph", "ref"}
        assert para.particles[0].repetition is Repetition.STAR

    def test_empty_element(self):
        assert parse_dtd(SIMPLE)["ref"].is_leaf

    def test_attlist_collected(self):
        dtd = parse_dtd(SIMPLE)
        assert "target" in dtd["ref"].attribute_names
        assert "kind" in dtd["ref"].attribute_names
        assert dtd["article"].attribute_names == ["id"]

    def test_undeclared_child_rejected(self):
        with pytest.raises(ValueError):
            parse_dtd("<!ELEMENT a (ghost)>")


class TestConstructs:
    def test_choice_group(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b | c)+><!ELEMENT b EMPTY><!ELEMENT c EMPTY>"
        )
        particle = dtd["a"].particles[0]
        assert set(particle.alternatives) == {"b", "c"}
        assert particle.repetition is Repetition.PLUS

    def test_nested_group_flattened(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b, (c | d)*)>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        particles = dtd["a"].particles
        assert particles[0].alternatives == ("b",)
        assert set(particles[1].alternatives) == {"c", "d"}
        assert particles[1].repetition is Repetition.STAR

    def test_unrepeated_nested_sequence_inlined(self):
        dtd = parse_dtd(
            "<!ELEMENT a (b, (c, d))>"
            "<!ELEMENT b EMPTY><!ELEMENT c EMPTY><!ELEMENT d EMPTY>"
        )
        assert [p.alternatives[0] for p in dtd["a"].particles] == ["b", "c", "d"]

    def test_any_content(self):
        dtd = parse_dtd("<!ELEMENT a ANY><!ELEMENT b EMPTY>")
        particle = dtd["a"].particles[-1]
        assert set(particle.alternatives) == {"a", "b"}

    def test_parameter_entities_expanded(self):
        text = """
        <!ENTITY % inline "(em | strong)*">
        <!ELEMENT p %inline;>
        <!ELEMENT em EMPTY>
        <!ELEMENT strong EMPTY>
        """
        dtd = parse_dtd(text, root="p")
        assert set(dtd["p"].particles[0].alternatives) == {"em", "strong"}

    def test_entity_cycle_rejected(self):
        text = '<!ENTITY % a "%b;"><!ENTITY % b "%a;"><!ELEMENT x (%a;)>'
        with pytest.raises(DTDParseError):
            parse_dtd(text)

    def test_duplicate_element_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!ELEMENT a EMPTY><!ELEMENT a EMPTY>")

    def test_no_elements_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!-- nothing here -->")

    def test_malformed_group_rejected(self):
        with pytest.raises(DTDParseError):
            parse_dtd("<!ELEMENT a (b, >")


class TestGenerationFromParsedDTD:
    def test_parsed_dtd_drives_the_generator(self):
        """The point of the parser: load a DTD, generate documents."""
        dtd = parse_dtd(SIMPLE)
        docs = DocumentGenerator(dtd, GeneratorConfig(seed=4)).generate_many(20)
        for doc in docs:
            assert doc.root.tag == "article"
            for element in doc.root.iter():
                assert element.tag in dtd
                allowed = dtd[element.tag].child_names()
                for child in element.children:
                    assert child.tag in allowed

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "article.dtd"
        path.write_text(SIMPLE, encoding="utf-8")
        dtd = load_dtd(path)
        assert dtd.name == "article"
        assert dtd.root == "article"
