"""Unit tests for collection statistics."""

from __future__ import annotations

import pytest

from repro.xmlkit.model import XMLDocument, build_element
from repro.xmlkit.stats import (
    collection_stats,
    document_stats,
    path_frequencies,
    tag_frequencies,
)


def two_docs():
    d0 = XMLDocument(
        doc_id=0,
        root=build_element("a", build_element("b", build_element("c"))),
    )
    d1 = XMLDocument(doc_id=1, root=build_element("a", build_element("b")))
    return [d0, d1]


class TestDocumentStats:
    def test_fields(self):
        stats = document_stats(two_docs()[0])
        assert stats.doc_id == 0
        assert stats.element_count == 3
        assert stats.distinct_paths == 3
        assert stats.depth == 3
        assert stats.size_bytes > 0


class TestCollectionStats:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collection_stats([])

    def test_aggregates(self):
        stats = collection_stats(two_docs())
        assert stats.document_count == 2
        assert stats.total_elements == 5
        assert stats.distinct_paths == 3  # (a), (a,b), (a,b,c)
        assert stats.distinct_tags == 3
        assert stats.max_depth == 3
        assert stats.min_bytes <= stats.mean_bytes <= stats.max_bytes

    def test_summary_readable(self):
        summary = collection_stats(two_docs()).summary()
        assert "2 documents" in summary
        assert "3 distinct paths" in summary


class TestFrequencies:
    def test_path_frequencies_count_documents_not_elements(self):
        doc = XMLDocument(
            doc_id=0,
            root=build_element("a", build_element("b"), build_element("b")),
        )
        freqs = path_frequencies([doc])
        assert freqs[("a", "b")] == 1  # two elements, one document

    def test_path_frequencies_across_docs(self):
        freqs = path_frequencies(two_docs())
        assert freqs[("a",)] == 2
        assert freqs[("a", "b")] == 2
        assert freqs[("a", "b", "c")] == 1

    def test_tag_frequencies_count_elements(self):
        doc = XMLDocument(
            doc_id=0,
            root=build_element("a", build_element("b"), build_element("b")),
        )
        assert tag_frequencies([doc]) == {"a": 1, "b": 2}
