"""Unit tests for the DTD model."""

from __future__ import annotations

import pytest

from repro.xmlkit.dtd import DTD, ElementDecl, Particle, Repetition


def tiny_dtd() -> DTD:
    return DTD(
        root="a",
        declarations=[
            ElementDecl("a", [Particle.one("b"), Particle.star("c")]),
            ElementDecl("b", has_text=True),
            ElementDecl("c", [Particle.optional("b")]),
        ],
    )


class TestRepetition:
    @pytest.mark.parametrize(
        "repetition,min_count,unbounded",
        [
            (Repetition.ONE, 1, False),
            (Repetition.OPTIONAL, 0, False),
            (Repetition.STAR, 0, True),
            (Repetition.PLUS, 1, True),
        ],
    )
    def test_cardinality(self, repetition, min_count, unbounded):
        assert repetition.min_count == min_count
        assert repetition.is_unbounded == unbounded


class TestParticle:
    def test_empty_alternatives_rejected(self):
        with pytest.raises(ValueError):
            Particle(())

    def test_constructors(self):
        assert Particle.one("x").repetition is Repetition.ONE
        assert Particle.optional("x").repetition is Repetition.OPTIONAL
        assert Particle.star("x").repetition is Repetition.STAR
        assert Particle.plus("x").repetition is Repetition.PLUS

    def test_choice(self):
        particle = Particle.choice(("x", "y"), Repetition.PLUS)
        assert particle.alternatives == ("x", "y")
        assert particle.repetition is Repetition.PLUS


class TestElementDecl:
    def test_child_names_unions_alternatives(self):
        decl = ElementDecl("a", [Particle.one("b"), Particle.choice(("c", "d"))])
        assert decl.child_names() == {"b", "c", "d"}

    def test_is_leaf(self):
        assert ElementDecl("a").is_leaf
        assert not ElementDecl("a", [Particle.one("b")]).is_leaf


class TestDTD:
    def test_validates_root_declared(self):
        with pytest.raises(ValueError):
            DTD(root="missing", declarations=[ElementDecl("a")])

    def test_validates_children_declared(self):
        with pytest.raises(ValueError):
            DTD(root="a", declarations=[ElementDecl("a", [Particle.one("ghost")])])

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError):
            DTD(root="a", declarations=[ElementDecl("a"), ElementDecl("a")])

    def test_lookup(self):
        dtd = tiny_dtd()
        assert dtd["b"].has_text
        assert "c" in dtd
        assert "zzz" not in dtd

    def test_element_names_sorted(self):
        assert tiny_dtd().element_names() == ["a", "b", "c"]

    def test_reachable_elements(self):
        dtd = DTD(
            root="a",
            declarations=[
                ElementDecl("a", [Particle.one("b")]),
                ElementDecl("b"),
                ElementDecl("island"),  # declared but unreachable
            ],
        )
        assert dtd.reachable_elements() == {"a", "b"}

    def test_not_recursive(self):
        assert not tiny_dtd().is_recursive()

    def test_recursive_via_cycle(self):
        dtd = DTD(
            root="a",
            declarations=[
                ElementDecl("a", [Particle.star("b")]),
                ElementDecl("b", [Particle.optional("a")]),
            ],
        )
        assert dtd.is_recursive()

    def test_self_recursive(self):
        dtd = DTD(
            root="a",
            declarations=[ElementDecl("a", [Particle.star("a")])],
        )
        assert dtd.is_recursive()
