"""Tests for the DBLP-like third data set."""

from __future__ import annotations

from repro.xmlkit.generator import DocumentGenerator, GeneratorConfig, dblp_like_dtd
from repro.xmlkit.stats import collection_stats


class TestDblpDTD:
    def test_validates(self):
        dblp_like_dtd().validate()

    def test_not_recursive(self):
        # Bibliographies are flat: the containment graph is a DAG.
        assert not dblp_like_dtd().is_recursive()

    def test_shallow_and_regular(self):
        docs = DocumentGenerator(dblp_like_dtd(), GeneratorConfig(seed=5)).generate_many(50)
        stats = collection_stats(docs)
        assert stats.max_depth == 3  # dblp / record / field
        # Far fewer distinct paths than the NITF set of equal size.
        assert stats.distinct_paths < 60

    def test_records_have_required_fields(self):
        docs = DocumentGenerator(dblp_like_dtd(), GeneratorConfig(seed=6)).generate_many(10)
        for doc in docs:
            for record in doc.root.children:
                if record.tag == "www":
                    continue
                tags = {child.tag for child in record.children}
                assert "title" in tags
                assert "author" in tags
                assert "year" in tags

    def test_end_to_end_broadcast(self):
        from repro.sim.config import small_setup
        from repro.sim.simulation import run_simulation

        result = run_simulation(small_setup(dtd="dblp"))
        assert result.completed
        assert result.mean_index_lookup_bytes(
            "two-tier"
        ) < result.mean_index_lookup_bytes("one-tier")

    def test_annotation_dominated_index(self):
        """With almost no structure, the two-tier pointer removal is the
        whole game: savings approach pointer/(id+pointer) = 2/3."""
        from repro.broadcast.server import DocumentStore, build_ci_from_store
        from repro.index.pruning import prune_to_pci
        from repro.xpath.generator import generate_workload

        docs = DocumentGenerator(dblp_like_dtd(), GeneratorConfig(seed=5)).generate_many(80)
        store = DocumentStore(docs)
        queries = generate_workload(docs, 40, seed=11)
        from repro.filtering.yfilter import YFilterEngine

        engine = YFilterEngine.from_queries(queries)
        requested = engine.filter_collection(docs).requested_doc_ids
        ci = build_ci_from_store(store, requested)
        pci, _ = prune_to_pci(ci, queries)
        one_tier = pci.size_bytes(one_tier=True)
        first_tier = pci.size_bytes(one_tier=False)
        saving = 1 - first_tier / one_tier
        assert saving > 0.5
