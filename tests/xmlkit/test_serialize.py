"""Unit tests for the XML serializer."""

from __future__ import annotations

from repro.xmlkit.model import XMLDocument, build_element
from repro.xmlkit.serialize import (
    escape_attr,
    escape_text,
    serialize_document,
    serialize_element,
)


class TestEscaping:
    def test_escape_text_specials(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_escape_text_plain_passthrough(self):
        assert escape_text("hello world") == "hello world"

    def test_escape_attr_quotes(self):
        assert escape_attr('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go&gt;"


class TestSerializeElement:
    def test_empty_element_self_closes(self):
        assert serialize_element(build_element("a")) == "<a/>"

    def test_text_only(self):
        assert serialize_element(build_element("a", text="hi")) == "<a>hi</a>"

    def test_attributes_in_insertion_order(self):
        element = build_element("a", b="1", a="2")
        assert serialize_element(element) == '<a b="1" a="2"/>'

    def test_nested_compact_has_no_whitespace(self):
        tree = build_element("a", build_element("b"), build_element("c", text="t"))
        assert serialize_element(tree) == "<a><b/><c>t</c></a>"

    def test_text_before_children(self):
        tree = build_element("a", build_element("b"), text="lead")
        assert serialize_element(tree) == "<a>lead<b/></a>"

    def test_pretty_output_contains_newlines_and_indent(self):
        tree = build_element("a", build_element("b"))
        pretty = serialize_element(tree, pretty=True)
        assert "\n" in pretty
        assert "  <b/>" in pretty

    def test_special_chars_escaped_in_output(self):
        tree = build_element("a", text="1 < 2 & 3")
        assert serialize_element(tree) == "<a>1 &lt; 2 &amp; 3</a>"


class TestSerializeDocument:
    def test_declaration_present(self):
        doc = XMLDocument(doc_id=0, root=build_element("a"))
        text = serialize_document(doc)
        assert text.startswith('<?xml version="1.0" encoding="UTF-8"?>')
        assert text.endswith("<a/>")

    def test_size_matches_serialization(self):
        doc = XMLDocument(doc_id=0, root=build_element("a", build_element("b")))
        assert doc.size_bytes == len(serialize_document(doc).encode("utf-8"))

    def test_unicode_sized_in_bytes(self):
        doc = XMLDocument(doc_id=0, root=build_element("a", text="naïve — ✓"))
        assert doc.size_bytes == len(serialize_document(doc).encode("utf-8"))
        assert doc.size_bytes > len(serialize_document(doc)) - 10  # sanity


class TestPrettyMode:
    def test_pretty_parses_back_structurally(self):
        from repro.xmlkit.parser import parse_element

        tree = build_element(
            "a",
            build_element("b", build_element("c", text="leaf")),
            build_element("d"),
        )
        pretty = serialize_element(tree, pretty=True)
        parsed = parse_element(pretty)
        # Whitespace-only formatting noise is dropped by the parser, so
        # the structures (and non-whitespace text) agree.
        assert parsed.tag == "a"
        assert [c.tag for c in parsed.children] == ["b", "d"]
        assert parsed.children[0].children[0].text == "leaf"

    def test_indentation_grows_with_depth(self):
        tree = build_element("a", build_element("b", build_element("c")))
        pretty = serialize_element(tree, pretty=True)
        lines = pretty.splitlines()
        b_line = next(line for line in lines if "<b>" in line)
        c_line = next(line for line in lines if "<c/>" in line)
        assert len(c_line) - len(c_line.lstrip()) > len(b_line) - len(b_line.lstrip())

    def test_compact_is_default_and_smaller(self):
        tree = build_element("a", build_element("b"), build_element("c"))
        assert len(serialize_element(tree)) < len(serialize_element(tree, pretty=True))
