"""Unit tests for the DTD-driven document generator."""

from __future__ import annotations

import pytest

from repro.xmlkit.dtd import DTD, ElementDecl, Particle
from repro.xmlkit.generator import (
    DocumentGenerator,
    GeneratorConfig,
    generate_collection,
    nasa_like_dtd,
    nitf_like_dtd,
)


class TestGeneratorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": 0},
            {"max_repeat": 0},
            {"repeat_prob": 1.0},
            {"repeat_prob": -0.1},
            {"optional_prob": 1.5},
            {"min_text_words": 5, "max_text_words": 2},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)


class TestDocumentGenerator:
    def test_deterministic_from_seed(self):
        dtd = nitf_like_dtd()
        first = DocumentGenerator(dtd, GeneratorConfig(seed=42)).generate_many(5)
        second = DocumentGenerator(dtd, GeneratorConfig(seed=42)).generate_many(5)
        for left, right in zip(first, second):
            assert left.root.structurally_equal(right.root)

    def test_different_seeds_differ(self):
        dtd = nitf_like_dtd()
        first = DocumentGenerator(dtd, GeneratorConfig(seed=1)).generate(0)
        second = DocumentGenerator(dtd, GeneratorConfig(seed=2)).generate(0)
        assert not first.root.structurally_equal(second.root)

    def test_doc_ids_consecutive(self):
        docs = DocumentGenerator(nitf_like_dtd()).generate_many(4, start_id=10)
        assert [doc.doc_id for doc in docs] == [10, 11, 12, 13]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            DocumentGenerator(nitf_like_dtd()).generate_many(-1)

    def test_max_depth_respected(self):
        config = GeneratorConfig(seed=9, max_depth=5)
        docs = DocumentGenerator(nitf_like_dtd(), config).generate_many(20)
        assert max(doc.depth() for doc in docs) <= 5

    def test_root_matches_dtd(self):
        doc = DocumentGenerator(nasa_like_dtd()).generate(0)
        assert doc.root.tag == "dataset"

    def test_tags_all_declared(self):
        dtd = nitf_like_dtd()
        doc = DocumentGenerator(dtd, GeneratorConfig(seed=3)).generate(0)
        for element in doc.root.iter():
            assert element.tag in dtd

    def test_children_allowed_by_content_model(self):
        dtd = nitf_like_dtd()
        doc = DocumentGenerator(dtd, GeneratorConfig(seed=4)).generate(0)
        for element in doc.root.iter():
            allowed = dtd[element.tag].child_names()
            for child in element.children:
                assert child.tag in allowed

    def test_required_particles_present_above_depth_limit(self):
        # nitf requires exactly one head and one body.
        doc = DocumentGenerator(nitf_like_dtd(), GeneratorConfig(seed=5)).generate(0)
        assert [c.tag for c in doc.root.children] == ["head", "body"]

    def test_text_only_on_pcdata_elements(self):
        dtd = nitf_like_dtd()
        doc = DocumentGenerator(dtd, GeneratorConfig(seed=6)).generate(0)
        for element in doc.root.iter():
            if element.text:
                assert dtd[element.tag].has_text

    def test_unbounded_repetition_capped(self):
        dtd = DTD(
            root="a",
            declarations=[ElementDecl("a", [Particle.plus("b")]), ElementDecl("b")],
        )
        config = GeneratorConfig(seed=1, max_repeat=3, repeat_prob=0.9)
        for _ in range(10):
            doc = DocumentGenerator(dtd, config).generate(0)
            assert 1 <= len(doc.root.children) <= 3


class TestGenerateCollection:
    def test_count_and_ids(self):
        docs = generate_collection(nitf_like_dtd(), 7, seed=1)
        assert len(docs) == 7
        assert [d.doc_id for d in docs] == list(range(7))

    def test_seed_flows_through(self):
        first = generate_collection(nitf_like_dtd(), 3, seed=5)
        second = generate_collection(nitf_like_dtd(), 3, seed=5)
        for left, right in zip(first, second):
            assert left.root.structurally_equal(right.root)


class TestBuiltinDTDs:
    def test_nitf_is_recursive(self):
        assert nitf_like_dtd().is_recursive()

    def test_nasa_is_recursive(self):
        assert nasa_like_dtd().is_recursive()

    def test_both_validate(self):
        nitf_like_dtd().validate()
        nasa_like_dtd().validate()

    def test_collection_profile_plausible(self, nitf_docs):
        from repro.xmlkit.stats import collection_stats

        stats = collection_stats(nitf_docs)
        # The paper's collection: ~KB-scale documents, non-trivial depth.
        assert 500 < stats.mean_bytes < 50_000
        assert stats.max_depth <= 12
        assert stats.distinct_tags > 20


class TestAttributes:
    def test_attribute_prob_zero_yields_no_attributes(self):
        config = GeneratorConfig(seed=8, attribute_prob=0.0)
        doc = DocumentGenerator(nitf_like_dtd(), config).generate(0)
        for element in doc.root.iter():
            assert element.attributes == {}

    def test_attribute_prob_one_fills_all_declared(self):
        dtd = nitf_like_dtd()
        config = GeneratorConfig(seed=8, attribute_prob=1.0)
        doc = DocumentGenerator(dtd, config).generate(0)
        for element in doc.root.iter():
            declared = dtd[element.tag].attribute_names
            assert set(element.attributes) == set(declared)

    def test_attributes_only_from_declarations(self):
        dtd = nitf_like_dtd()
        doc = DocumentGenerator(dtd, GeneratorConfig(seed=9)).generate(0)
        for element in doc.root.iter():
            for name in element.attributes:
                assert name in dtd[element.tag].attribute_names
