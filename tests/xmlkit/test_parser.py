"""Unit and property tests for the XML parser."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.xmlkit.model import XMLDocument, build_element
from repro.xmlkit.parser import XMLParseError, parse_document, parse_element
from repro.xmlkit.serialize import serialize_document, serialize_element
from tests.strategies import xml_elements


class TestParseElement:
    def test_self_closing(self):
        element = parse_element("<a/>")
        assert element.tag == "a"
        assert not element.children

    def test_attributes(self):
        element = parse_element('<a x="1" y="two"/>')
        assert element.attributes == {"x": "1", "y": "two"}

    def test_single_quoted_attributes(self):
        assert parse_element("<a x='1'/>").attributes == {"x": "1"}

    def test_nested_children(self):
        element = parse_element("<a><b/><c><d/></c></a>")
        assert [c.tag for c in element.children] == ["b", "c"]
        assert element.children[1].children[0].tag == "d"

    def test_text_content(self):
        assert parse_element("<a>hello</a>").text == "hello"

    def test_entities_decoded(self):
        assert parse_element("<a>1 &lt; 2 &amp; 3</a>").text == "1 < 2 & 3"

    def test_numeric_entities(self):
        assert parse_element("<a>&#65;&#x42;</a>").text == "AB"

    def test_comments_skipped(self):
        element = parse_element("<!-- lead --><a><!-- inner --><b/></a>")
        assert [c.tag for c in element.children] == ["b"]

    def test_processing_instruction_skipped(self):
        element = parse_element('<?xml version="1.0"?><a/>')
        assert element.tag == "a"

    def test_whitespace_between_children_ignored(self):
        element = parse_element("<a>\n  <b/>\n  <c/>\n</a>")
        assert [c.tag for c in element.children] == ["b", "c"]
        assert element.text == ""


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a>&nosuch;</a>",
            "<a/><b/>",
            "text only",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLParseError):
            parse_element(bad)

    def test_error_carries_offset(self):
        try:
            parse_element("<a></b>")
        except XMLParseError as exc:
            assert exc.position >= 0
        else:  # pragma: no cover
            pytest.fail("expected XMLParseError")


class TestParseDocument:
    def test_round_trip_simple(self):
        doc = XMLDocument(
            doc_id=5,
            root=build_element(
                "a", build_element("b", text="x & y"), build_element("c"), k="v"
            ),
        )
        parsed = parse_document(serialize_document(doc), doc_id=5)
        assert parsed.doc_id == 5
        assert parsed.root.structurally_equal(doc.root)

    @given(xml_elements())
    def test_round_trip_random_trees(self, element):
        text = serialize_element(element)
        assert parse_element(text).structurally_equal(element)

    def test_round_trip_generated_collection(self, nitf_docs):
        for doc in nitf_docs[:5]:
            parsed = parse_document(serialize_document(doc))
            assert parsed.root.structurally_equal(doc.root)
