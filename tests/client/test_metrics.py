"""Unit tests for client metrics accounting."""

from __future__ import annotations

from repro.client.metrics import ClientMetrics


class TestClientMetrics:
    def test_initial_state(self):
        metrics = ClientMetrics(arrival_time=100)
        assert metrics.index_lookup_bytes == 0
        assert metrics.tuning_bytes == 0
        assert metrics.access_bytes is None
        assert not metrics.is_complete

    def test_merge_cycle_accumulates(self):
        metrics = ClientMetrics(arrival_time=0)
        metrics.merge_cycle(probe=128, index=256, offsets=128, docs=1024)
        metrics.merge_cycle(index=128, offsets=128, docs=512)
        assert metrics.probe_bytes == 128
        assert metrics.index_bytes == 384
        assert metrics.offset_bytes == 256
        assert metrics.doc_bytes == 1536
        assert metrics.cycles_listened == 2

    def test_index_lookup_excludes_docs(self):
        metrics = ClientMetrics(arrival_time=0)
        metrics.merge_cycle(probe=128, index=256, offsets=128, docs=9999)
        assert metrics.index_lookup_bytes == 512
        assert metrics.tuning_bytes == 512 + 9999

    def test_access_bytes(self):
        metrics = ClientMetrics(arrival_time=100)
        metrics.completion_time = 1100
        assert metrics.access_bytes == 1000
        assert metrics.is_complete
