"""Tests for the selective second-tier read (OffsetRead extension)."""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.protocol import OffsetRead
from repro.client.twotier import TwoTierClient
from repro.index.twotier import OffsetList
from repro.xpath.evaluator import matching_documents


class TestPacketsForDocs:
    def test_header_always_charged(self):
        offsets = OffsetList.from_mapping({i: i * 10 for i in range(5)})
        assert 0 in offsets.packets_for_docs({3})

    def test_unknown_docs_touch_only_header(self):
        offsets = OffsetList.from_mapping({i: i * 10 for i in range(5)})
        assert offsets.packets_for_docs({999}) == frozenset({0})

    def test_entries_map_to_correct_packets(self):
        # 60 entries * 6 B + 2 B header = 362 B -> 3 packets of 128 B.
        offsets = OffsetList.from_mapping({i: i for i in range(60)})
        assert offsets.packet_count == 3
        # Entry 0 starts at byte 2 (packet 0); entry 59 starts at byte
        # 2 + 59*6 = 356 (packet 2).
        assert offsets.packets_for_docs({0}) == frozenset({0})
        assert 2 in offsets.packets_for_docs({59})

    def test_straddling_entry_charges_both_packets(self):
        # Entry 21 starts at byte 2 + 21*6 = 128 exactly -> packet 1 only;
        # entry 20 starts at 122 and ends at 127 -> packet 0 only.
        offsets = OffsetList.from_mapping({i: i for i in range(40)})
        assert offsets.packets_for_docs({20}) == frozenset({0})
        assert offsets.packets_for_docs({21}) == frozenset({0, 1})

    def test_selective_never_more_than_full(self):
        offsets = OffsetList.from_mapping({i: i for i in range(100)})
        touched = offsets.packets_for_docs(set(range(0, 100, 7)))
        assert len(touched) <= offsets.packet_count


class TestSelectiveOffsetClient:
    def drain(self, store, queries, client):
        server = BroadcastServer(store, cycle_data_capacity=30_000)
        for query in queries:
            server.submit(query, 0)
        while not client.satisfied:
            cycle = server.build_cycle()
            assert cycle is not None
            client.on_cycle(cycle)
        return client

    def test_selective_cheaper_or_equal(self, nitf_store, nitf_queries):
        query = nitf_queries[0]
        full = self.drain(
            nitf_store, nitf_queries, TwoTierClient(query, 0)
        )
        selective = self.drain(
            nitf_store,
            nitf_queries,
            TwoTierClient(query, 0, offset_read=OffsetRead.SELECTIVE),
        )
        assert selective.metrics.offset_bytes <= full.metrics.offset_bytes
        # Same documents either way.
        assert selective.received_doc_ids == full.received_doc_ids

    def test_correctness_with_selective_reads(self, nitf_store, nitf_queries):
        for query in nitf_queries[:5]:
            client = self.drain(
                nitf_store,
                nitf_queries,
                TwoTierClient(query, 0, offset_read=OffsetRead.SELECTIVE),
            )
            assert client.received_doc_ids == matching_documents(
                query, nitf_store.documents
            )
