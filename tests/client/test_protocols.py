"""Unit tests for the client access protocols.

The fixture broadcasts the paper's running example through a real server
and feeds the resulting cycles to clients, so protocol behaviour is tested
against genuine cycle programs rather than mocks.
"""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.naive import NaiveClient
from repro.client.onetier import OneTierClient
from repro.client.protocol import FirstTierRead
from repro.client.twotier import TwoTierClient
from repro.xpath.parser import parse_query


def build_cycles(query_texts, capacity=1024):
    """Admit the queries at time 0 and collect every cycle until drained."""
    from tests.xpath.test_evaluator import paper_documents

    store = DocumentStore(paper_documents())
    server = BroadcastServer(store, cycle_data_capacity=capacity)
    pendings = [server.submit(parse_query(text), 0) for text in query_texts]
    cycles = []
    while True:
        cycle = server.build_cycle()
        if cycle is None:
            break
        cycles.append(cycle)
        assert len(cycles) < 50
    return store, pendings, cycles


class TestTwoTierClient:
    def test_completes_with_correct_docs(self):
        _store, _p, cycles = build_cycles(["/a//c"])
        client = TwoTierClient(parse_query("/a//c"), arrival_time=0)
        for cycle in cycles:
            client.on_cycle(cycle)
        assert client.satisfied
        assert client.received_doc_ids == {1, 2, 3, 4}
        assert client.metrics.is_complete

    def test_equation_one_structure(self):
        """TT = (first-tier read once) + n * L_O + docs (Equation 1)."""
        _store, _p, cycles = build_cycles(["/a//c"])
        client = TwoTierClient(
            parse_query("/a//c"), arrival_time=0, first_tier_read=FirstTierRead.FULL
        )
        for cycle in cycles:
            client.on_cycle(cycle)
        n = client.metrics.cycles_listened
        expected_offsets = sum(c.offset_list_air_bytes for c in cycles[:n])
        assert client.metrics.offset_bytes == expected_offsets
        # FULL mode charges the whole first tier exactly once.
        assert client.metrics.index_bytes == cycles[0].first_tier_bytes

    def test_selective_read_cheaper_than_full(self):
        _store, _p, cycles = build_cycles(["/a/b/a", "/a//c", "/a/c/*"])
        query = parse_query("/a/b/a")
        selective = TwoTierClient(query, 0, first_tier_read=FirstTierRead.SELECTIVE)
        full = TwoTierClient(query, 0, first_tier_read=FirstTierRead.FULL)
        for cycle in cycles:
            selective.on_cycle(cycle)
            full.on_cycle(cycle)
        assert selective.metrics.index_bytes <= full.metrics.index_bytes

    def test_probe_charged_once(self):
        _store, _p, cycles = build_cycles(["/a//c"])
        client = TwoTierClient(parse_query("/a//c"), 0)
        for cycle in cycles:
            client.on_cycle(cycle)
        assert client.metrics.probe_bytes == cycles[0].layout.packet_bytes

    def test_stops_listening_after_satisfaction(self):
        _store, _p, cycles = build_cycles(["/a/b/a", "/a//c"])
        client = TwoTierClient(parse_query("/a/b/a"), 0)
        for cycle in cycles:
            client.on_cycle(cycle)
        done_at = client.metrics.cycles_listened
        # Feeding further cycles must not change anything.
        for cycle in cycles:
            cycle_clone_start = cycle.start_time
            client.on_cycle(cycle)
            assert cycle.start_time == cycle_clone_start
        assert client.metrics.cycles_listened == done_at

    def test_ignores_cycles_before_arrival(self):
        _store, _p, cycles = build_cycles(["/a//c"])
        late = TwoTierClient(parse_query("/a//c"), arrival_time=cycles[0].start_time + 1)
        late.on_cycle(cycles[0])
        assert late.metrics.cycles_listened == 0


class TestOneTierClient:
    def test_completes_with_correct_docs(self):
        _store, _p, cycles = build_cycles(["/a/b"])
        client = OneTierClient(parse_query("/a/b"), 0)
        for cycle in cycles:
            client.on_cycle(cycle)
        assert client.satisfied
        assert client.received_doc_ids == {0, 1, 2, 4}

    def test_pays_index_every_cycle(self):
        _store, _p, cycles = build_cycles(["/a//c"], capacity=128)
        client = OneTierClient(parse_query("/a//c"), 0)
        for cycle in cycles:
            client.on_cycle(cycle)
        n = client.metrics.cycles_listened
        assert n > 1
        # Index charged in every listened cycle (roughly n equal searches).
        per_cycle = client.metrics.index_bytes / n
        assert per_cycle >= cycles[0].layout.packet_bytes

    def test_no_offset_bytes(self):
        _store, _p, cycles = build_cycles(["/a//c"])
        client = OneTierClient(parse_query("/a//c"), 0)
        for cycle in cycles:
            client.on_cycle(cycle)
        assert client.metrics.offset_bytes == 0


def build_nitf_cycles(store, queries, capacity):
    """Drain a realistic NITF broadcast (multi-packet indexes)."""
    server = BroadcastServer(store, cycle_data_capacity=capacity)
    for query in queries:
        server.submit(query, 0)
    cycles = []
    while True:
        cycle = server.build_cycle()
        if cycle is None:
            break
        cycles.append(cycle)
        assert len(cycles) < 200
    return cycles


class TestProtocolComparison:
    def test_two_tier_lookup_cheaper_over_many_cycles(
        self, nitf_store, nitf_queries
    ):
        """The paper's Figure 11 claim needs realistic scale: the one-tier
        search must span multiple packets per cycle while L_O stays small.
        The toy running example fits in one packet, where one-tier wins --
        that crossover is asserted separately below."""
        cycles = build_nitf_cycles(nitf_store, nitf_queries, capacity=30_000)
        assert len(cycles) >= 3
        wins = 0
        compared = 0
        for query in nitf_queries[:10]:
            one = OneTierClient(query, 0)
            two = TwoTierClient(query, 0)
            for cycle in cycles:
                one.on_cycle(cycle)
                two.on_cycle(cycle)
            assert one.satisfied and two.satisfied
            if one.metrics.cycles_listened >= 3:
                compared += 1
                if two.metrics.index_lookup_bytes < one.metrics.index_lookup_bytes:
                    wins += 1
        assert compared > 0
        assert wins == compared

    def test_one_tier_wins_single_cycle_crossover(self):
        """With everything in one packet and one cycle, the extra L_O read
        makes two-tier cost more -- the crossover the paper's n >= 2
        regime sits beyond."""
        _store, _p, cycles = build_cycles(["/a//c"], capacity=1024)
        assert len(cycles) == 1
        query = parse_query("/a//c")
        one = OneTierClient(query, 0)
        two = TwoTierClient(query, 0)
        for cycle in cycles:
            one.on_cycle(cycle)
            two.on_cycle(cycle)
        assert one.metrics.index_lookup_bytes <= two.metrics.index_lookup_bytes

    def test_same_documents_same_cycles(self):
        _store, _p, cycles = build_cycles(["/a//c"], capacity=128)
        query = parse_query("/a//c")
        one = OneTierClient(query, 0)
        two = TwoTierClient(query, 0)
        for cycle in cycles:
            one.on_cycle(cycle)
            two.on_cycle(cycle)
        assert one.received_doc_ids == two.received_doc_ids
        assert one.metrics.doc_bytes == two.metrics.doc_bytes
        assert one.metrics.completion_time == two.metrics.completion_time


class TestNaiveClient:
    def test_requires_expected_set(self):
        with pytest.raises(ValueError):
            NaiveClient(parse_query("/a"), 0, frozenset())

    def test_downloads_whole_data_segments(self):
        store, _p, cycles = build_cycles(["/a//c", "/a/b"])
        expected = frozenset({1, 2, 3, 4})
        client = NaiveClient(parse_query("/a//c"), 0, expected)
        for cycle in cycles:
            client.on_cycle(cycle)
        assert client.satisfied
        listened_data = sum(
            sum(c.doc_air_bytes[d] for d in c.doc_ids)
            for c in cycles[: client.metrics.cycles_listened]
        )
        assert client.metrics.doc_bytes == listened_data

    def test_costs_more_than_indexed_clients(self, nitf_store, nitf_queries):
        """On a realistic collection, exhaustive listening dwarfs indexed
        access (the Section 2.3 motivation)."""
        cycles = build_nitf_cycles(nitf_store, nitf_queries, capacity=30_000)
        from repro.xpath.evaluator import matching_documents

        # Pick a *selective* query: a query matching the whole collection
        # must download everything anyway, and then the index is pure
        # overhead -- selectivity is where air indexing pays off.
        query = min(
            nitf_queries,
            key=lambda q: len(matching_documents(q, nitf_store.documents)),
        )
        expected = frozenset(matching_documents(query, nitf_store.documents))
        assert len(expected) < len(nitf_store.documents) // 2
        naive = NaiveClient(query, 0, expected)
        two = TwoTierClient(query, 0)
        for cycle in cycles:
            naive.on_cycle(cycle)
            two.on_cycle(cycle)
        assert naive.satisfied and two.satisfied
        assert naive.metrics.tuning_bytes > two.metrics.tuning_bytes
