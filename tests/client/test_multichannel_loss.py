"""Loss-aware multi-channel client: recovery ladder over K channels."""

from __future__ import annotations

import pytest

from repro.broadcast.loss import LOSSLESS
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.multichannel import MultiChannelTwoTierClient
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xpath.parser import parse_query
from tests.client.test_lossy_unit import _AlwaysLose


def multichannel_server(num_channels=2):
    from tests.xpath.test_evaluator import paper_documents

    return BroadcastServer(
        DocumentStore(paper_documents()),
        num_data_channels=num_channels,
        cycle_data_capacity=100_000,
        acknowledged_delivery=True,
    )


class TestRecoveryLadder:
    def test_lost_index_packet_forces_retry(self):
        server = multichannel_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        first = server.build_cycle()
        client = MultiChannelTwoTierClient(
            query, 0, loss_model=_AlwaysLose(lose_index=True), client_key=1
        )
        client.on_cycle(first)
        assert client.index_retries == 1
        assert client.expected_doc_ids is None
        assert client.metrics.index_bytes > 0
        assert client.metrics.offset_bytes == 0

        client.loss_model = LOSSLESS
        server.confirm_delivery(pending, client.received_doc_ids, first)
        client.on_cycle(server.build_cycle())
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})

    def test_lost_offset_packet_blinds_the_cycle(self):
        server = multichannel_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = MultiChannelTwoTierClient(
            query, 0, loss_model=_AlwaysLose(lose_offsets=True), client_key=1
        )
        client.on_cycle(cycle)
        assert client.blind_cycles == 1
        assert client.received_doc_ids == set()
        assert client.metrics.doc_bytes == 0
        assert client.metrics.offset_bytes > 0

    def test_lost_frames_charged_but_not_recorded(self):
        server = multichannel_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        cycle = server.build_cycle()
        client = MultiChannelTwoTierClient(
            query, 0, loss_model=_AlwaysLose(lose_docs=True), client_key=1
        )
        client.on_cycle(cycle)
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})
        assert client.received_doc_ids == set()
        # The tuner was committed for every catchable document's full air
        # time before the corruption surfaced, so the bytes are charged.
        assert client.metrics.doc_bytes > 0

        # Rebroadcast under a healed channel drains the session.
        client.loss_model = LOSSLESS
        guard = 0
        while not client.satisfied:
            server.confirm_delivery(pending, client.received_doc_ids, cycle)
            cycle = server.build_cycle()
            assert cycle is not None
            client.on_cycle(cycle)
            guard += 1
            assert guard < 50
        assert client.received_doc_ids == client.expected_doc_ids

    def test_lossless_ladder_counters_stay_zero(self):
        server = multichannel_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        client = MultiChannelTwoTierClient(query, 0, loss_model=LOSSLESS)
        guard = 0
        while not client.satisfied:  # K=2 conflicts may defer documents
            cycle = server.build_cycle()
            assert cycle is not None
            client.on_cycle(cycle)
            server.confirm_delivery(pending, client.received_doc_ids, cycle)
            guard += 1
            assert guard < 50
        assert client.index_retries == 0
        assert client.blind_cycles == 0
        assert client.received_doc_ids == client.expected_doc_ids


class TestLossyMultiChannelSimulation:
    def test_config_accepts_loss_with_multiple_channels(self):
        config = small_setup(num_data_channels=2, loss_prob=0.15)
        assert config.loss_prob == 0.15  # no longer rejected

    def test_simulation_drains_under_losses(self, nitf_docs):
        # Same channel quality as the single-channel loss integration
        # tests: per-packet erasures, so whole-document survival decays
        # exponentially in frame count and higher rates never drain.
        config = small_setup(
            n_q=6,
            arrival_cycles=2,
            max_cycles=300,
            num_data_channels=2,
            loss_prob=0.002,
        )
        result = run_simulation(config, documents=nitf_docs)
        assert result.completed
        records = [r for r in result.clients if r.protocol == "two-tier-multi"]
        assert records  # the loss-aware multichannel client ran the show
