"""Unit tests for the lossy two-tier client's failure behaviours."""

from __future__ import annotations

import pytest

from repro.broadcast.loss import LOSSLESS, PacketLossModel
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.lossy import LossyTwoTierClient
from repro.client.twotier import TwoTierClient
from repro.xpath.parser import parse_query


class _AlwaysLose(PacketLossModel):
    """Deterministic total loss for targeted packet ranges."""

    def __init__(self, lose_index=False, lose_offsets=False, lose_docs=False):
        object.__setattr__(self, "loss_prob", 0.5)  # non-zero: not lossless
        object.__setattr__(self, "seed", 0)
        self._lose_index = lose_index
        self._lose_offsets = lose_offsets
        self._lose_docs = lose_docs

    def packet_lost(self, client_key, cycle_number, packet_index):
        if packet_index >= 1_000_000:
            return self._lose_offsets
        return self._lose_index

    def span_lost(self, client_key, cycle_number, start_packet, packet_count):
        return self._lose_docs


def drained_server(capacity=100_000):
    from tests.xpath.test_evaluator import paper_documents

    store = DocumentStore(paper_documents())
    server = BroadcastServer(
        store, cycle_data_capacity=capacity, acknowledged_delivery=True
    )
    return server


class TestIndexLoss:
    def test_index_loss_forces_retry(self):
        server = drained_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        first = server.build_cycle()

        client = LossyTwoTierClient(query, 0, client_key=1, loss_model=_AlwaysLose(lose_index=True))
        client.on_cycle(first)
        assert client.expected_doc_ids is None  # read failed
        assert client.index_retries == 1
        assert client.metrics.index_bytes > 0  # the bytes were still paid
        assert client.metrics.offset_bytes == 0  # no point reading offsets

        # Channel heals: the retry on the next cycle succeeds.
        client.loss_model = LOSSLESS
        server.confirm_delivery(pending, client.received_doc_ids, first)
        second = server.build_cycle()
        client.on_cycle(second)
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})


class TestOffsetLoss:
    def test_blind_cycle_downloads_nothing(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_AlwaysLose(lose_offsets=True)
        )
        client.on_cycle(cycle)
        assert client.blind_cycles == 1
        assert client.received_doc_ids == set()
        assert client.metrics.doc_bytes == 0
        assert client.metrics.offset_bytes > 0  # charged for the attempt


class TestDocumentLoss:
    def test_lost_documents_charged_but_not_received(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_AlwaysLose(lose_docs=True)
        )
        client.on_cycle(cycle)
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})
        assert client.received_doc_ids == set()
        assert client.metrics.doc_bytes > 0  # listened, frames corrupted

    def test_lossless_model_equals_reliable_client(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        lossy = LossyTwoTierClient(query, 0, client_key=1, loss_model=LOSSLESS)
        reliable = TwoTierClient(query, 0)
        lossy.on_cycle(cycle)
        reliable.on_cycle(cycle)
        assert lossy.received_doc_ids == reliable.received_doc_ids
        assert lossy.metrics.doc_bytes == reliable.metrics.doc_bytes
        assert lossy.metrics.offset_bytes == reliable.metrics.offset_bytes
