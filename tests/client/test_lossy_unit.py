"""Unit tests for the lossy two-tier client's failure behaviours."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.broadcast.loss import LOSSLESS, PacketLossModel
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.lossy import LossyTwoTierClient
from repro.client.twotier import TwoTierClient
from repro.index.sizes import PAPER_SIZE_MODEL
from repro.xpath.parser import parse_query


class _AlwaysLose(PacketLossModel):
    """Deterministic total loss for targeted packet ranges."""

    def __init__(self, lose_index=False, lose_offsets=False, lose_docs=False):
        object.__setattr__(self, "loss_prob", 0.5)  # non-zero: not lossless
        object.__setattr__(self, "seed", 0)
        self._lose_index = lose_index
        self._lose_offsets = lose_offsets
        self._lose_docs = lose_docs

    def packet_lost(self, client_key, cycle_number, packet_index):
        if packet_index >= 1_000_000:
            return self._lose_offsets
        return self._lose_index

    def span_lost(self, client_key, cycle_number, start_packet, packet_count):
        return self._lose_docs


class _LoseOnly(PacketLossModel):
    """Lose exactly the listed packet indices; record every query."""

    def __init__(self, targets=()):
        object.__setattr__(self, "loss_prob", 0.5)  # non-zero: not lossless
        object.__setattr__(self, "seed", 0)
        self._targets = set(targets)
        self.packet_queries = []

    def packet_lost(self, client_key, cycle_number, packet_index):
        self.packet_queries.append(packet_index)
        return packet_index in self._targets

    def span_lost(self, client_key, cycle_number, start_packet, packet_count):
        return False


class _CountingLoss(PacketLossModel):
    """Lossless, but record every span draw (single-draw regression)."""

    def __init__(self):
        object.__setattr__(self, "loss_prob", 0.5)
        object.__setattr__(self, "seed", 0)
        self.span_calls = []

    def packet_lost(self, client_key, cycle_number, packet_index):
        return False

    def span_lost(self, client_key, cycle_number, start_packet, packet_count):
        self.span_calls.append((start_packet, packet_count))
        return False


def drained_server(capacity=100_000, size_model=PAPER_SIZE_MODEL):
    from tests.xpath.test_evaluator import paper_documents

    store = DocumentStore(paper_documents(), size_model=size_model)
    server = BroadcastServer(
        store, cycle_data_capacity=capacity, acknowledged_delivery=True
    )
    return server


#: packets small enough that the paper collection's offset list and
#: packed first tier both span several packets
TINY_PACKETS = replace(PAPER_SIZE_MODEL, packet_bytes=24)


class TestIndexLoss:
    def test_index_loss_forces_retry(self):
        server = drained_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        first = server.build_cycle()

        client = LossyTwoTierClient(query, 0, client_key=1, loss_model=_AlwaysLose(lose_index=True))
        client.on_cycle(first)
        assert client.expected_doc_ids is None  # read failed
        assert client.index_retries == 1
        assert client.metrics.index_bytes > 0  # the bytes were still paid
        assert client.metrics.offset_bytes == 0  # no point reading offsets

        # Channel heals: the retry on the next cycle succeeds.
        client.loss_model = LOSSLESS
        server.confirm_delivery(pending, client.received_doc_ids, first)
        second = server.build_cycle()
        client.on_cycle(second)
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})


class TestOffsetLoss:
    def test_blind_cycle_downloads_nothing(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_AlwaysLose(lose_offsets=True)
        )
        client.on_cycle(cycle)
        assert client.blind_cycles == 1
        assert client.received_doc_ids == set()
        assert client.metrics.doc_bytes == 0
        assert client.metrics.offset_bytes > 0  # charged for the attempt


class TestDocumentLoss:
    def test_lost_documents_charged_but_not_received(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_AlwaysLose(lose_docs=True)
        )
        client.on_cycle(cycle)
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})
        assert client.received_doc_ids == set()
        assert client.metrics.doc_bytes > 0  # listened, frames corrupted

    def test_span_lost_drawn_once_per_document(self):
        """Regression: a document's frame run is one loss draw, not many."""
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        model = _CountingLoss()
        client = LossyTwoTierClient(query, 0, client_key=1, loss_model=model)
        client.on_cycle(cycle)
        assert client.received_doc_ids == client.expected_doc_ids
        assert len(model.span_calls) == len(client.expected_doc_ids)
        assert len(set(model.span_calls)) == len(model.span_calls)

    def test_lossless_model_equals_reliable_client(self):
        server = drained_server()
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        lossy = LossyTwoTierClient(query, 0, client_key=1, loss_model=LOSSLESS)
        reliable = TwoTierClient(query, 0)
        lossy.on_cycle(cycle)
        reliable.on_cycle(cycle)
        assert lossy.received_doc_ids == reliable.received_doc_ids
        assert lossy.metrics.doc_bytes == reliable.metrics.doc_bytes
        assert lossy.metrics.offset_bytes == reliable.metrics.offset_bytes


class TestMultiPacketStructures:
    """Losses inside multi-packet index/offset structures (tiny packets)."""

    def test_one_lost_offset_packet_blinds_the_cycle(self):
        server = drained_server(size_model=TINY_PACKETS)
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        cycle = server.build_cycle()
        assert cycle.offset_list.packet_count > 1  # the point of the test

        # Lose only the *last* offset packet; the first arrives fine.
        last = 1_000_000 + cycle.offset_list.packet_count - 1
        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_LoseOnly({last})
        )
        client.on_cycle(cycle)
        assert client.expected_doc_ids is not None  # index read succeeded
        assert client.blind_cycles == 1
        assert client.received_doc_ids == set()
        assert client.metrics.offset_bytes > 0  # partial list still paid for

        # Healed channel: next cycle's rebroadcast completes the session.
        client.loss_model = LOSSLESS
        server.confirm_delivery(pending, client.received_doc_ids, cycle)
        client.on_cycle(server.build_cycle())
        assert client.received_doc_ids == client.expected_doc_ids

    def test_one_lost_packet_of_selective_index_read_forces_retry(self):
        server = drained_server(size_model=TINY_PACKETS)
        query = parse_query("/a//c")
        pending = server.submit(query, 0)
        cycle = server.build_cycle()

        # Discover which first-tier packets the selective read touches.
        spy = _LoseOnly()
        probe_client = LossyTwoTierClient(query, 0, client_key=1, loss_model=spy)
        probe_client.on_cycle(cycle)
        needed = {p for p in spy.packet_queries if p < 1_000_000}
        assert len(needed) > 1  # the read really spans several packets

        client = LossyTwoTierClient(
            query, 0, client_key=1, loss_model=_LoseOnly({max(needed)})
        )
        client.on_cycle(cycle)
        assert client.index_retries == 1
        assert client.expected_doc_ids is None
        # All needed packets were listened to before the loss surfaced.
        packed = cycle.packed_first_tier
        assert client.metrics.index_bytes == len(needed) * packed.packet_bytes
        assert client.metrics.offset_bytes == 0

        client.loss_model = LOSSLESS
        server.confirm_delivery(pending, client.received_doc_ids, cycle)
        client.on_cycle(server.build_cycle())
        assert client.received_doc_ids == client.expected_doc_ids
