"""Protocol accounting identities, recomputed independently.

The metrics a client reports must be *derivable* from the cycles it saw;
these tests replay the cycles and rebuild every component from scratch,
catching double-charging or skipped accounting.
"""

from __future__ import annotations

import pytest

from repro.broadcast.program import IndexScheme
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.onetier import OneTierClient
from repro.client.twotier import TwoTierClient
from repro.xpath.evaluator import matching_documents


@pytest.fixture(scope="module")
def broadcast(nitf_store, nitf_queries):
    server = BroadcastServer(nitf_store, cycle_data_capacity=30_000)
    for query in nitf_queries:
        server.submit(query, 0)
    cycles = []
    while True:
        cycle = server.build_cycle()
        if cycle is None:
            break
        cycles.append(cycle)
    return cycles


def replay(client_cls, query, cycles):
    client = client_cls(query, 0)
    for cycle in cycles:
        client.on_cycle(cycle)
    assert client.satisfied
    return client


class TestOneTierIdentity:
    def test_index_bytes_equal_sum_of_searches(self, broadcast, nitf_queries):
        """one-tier index cost == sum over listened cycles of the
        packet-granular selective search, recomputed here."""
        for query in nitf_queries[:8]:
            client = replay(OneTierClient, query, broadcast)
            n = client.metrics.cycles_listened
            expected = 0
            for cycle in broadcast[:n]:
                lookup = cycle.lookup(query)
                expected += cycle.packed_one_tier.tuning_bytes_for_nodes(
                    lookup.visited_node_ids
                )
            assert client.metrics.index_bytes == expected, str(query)

    def test_doc_bytes_equal_sum_of_air_sizes(self, broadcast, nitf_queries, nitf_store):
        for query in nitf_queries[:8]:
            client = replay(OneTierClient, query, broadcast)
            expected = sum(
                nitf_store.air_bytes(doc_id) for doc_id in client.received_doc_ids
            )
            assert client.metrics.doc_bytes == expected


class TestTwoTierIdentity:
    def test_offset_bytes_equal_n_times_lo(self, broadcast, nitf_queries):
        for query in nitf_queries[:8]:
            client = replay(TwoTierClient, query, broadcast)
            n = client.metrics.cycles_listened
            expected = sum(c.offset_list_air_bytes for c in broadcast[:n])
            assert client.metrics.offset_bytes == expected

    def test_index_charged_exactly_once(self, broadcast, nitf_queries):
        for query in nitf_queries[:8]:
            client = replay(TwoTierClient, query, broadcast)
            first = broadcast[0]
            lookup = first.lookup(query)
            expected = first.packed_first_tier.tuning_bytes_for_nodes(
                lookup.visited_node_ids
            )
            assert client.metrics.index_bytes == expected

    def test_tuning_decomposition(self, broadcast, nitf_queries):
        for query in nitf_queries[:8]:
            client = replay(TwoTierClient, query, broadcast)
            m = client.metrics
            assert m.tuning_bytes == (
                m.probe_bytes + m.index_bytes + m.offset_bytes + m.doc_bytes
            )
            assert m.index_lookup_bytes == m.tuning_bytes - m.doc_bytes


class TestSharedInvariants:
    def test_received_equals_expected_equals_oracle(
        self, broadcast, nitf_queries, nitf_store
    ):
        for query in nitf_queries[:8]:
            for client_cls in (OneTierClient, TwoTierClient):
                client = replay(client_cls, query, broadcast)
                oracle = matching_documents(query, nitf_store.documents)
                assert client.expected_doc_ids == oracle
                assert client.received_doc_ids == oracle

    def test_completion_time_within_last_cycle(self, broadcast, nitf_queries):
        for query in nitf_queries[:8]:
            client = replay(TwoTierClient, query, broadcast)
            n = client.metrics.cycles_listened
            last = broadcast[n - 1]
            assert last.start_time <= client.metrics.completion_time <= last.end_time

    def test_cycles_listened_monotone_prefix(self, broadcast, nitf_queries):
        """A client listens to a prefix of cycles then stops: feeding it a
        cycle before its last listened one again must be a no-op."""
        query = nitf_queries[0]
        client = replay(TwoTierClient, query, broadcast)
        before = client.metrics.tuning_bytes
        client.on_cycle(broadcast[0])
        assert client.metrics.tuning_bytes == before
