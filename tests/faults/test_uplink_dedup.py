"""Idempotent uplink admission: keyed retries never double-admit.

Pins the ``confirm_delivery``/pending interaction: a dedup hit must
return the *existing* :class:`PendingQuery` object with its
``arrival_time`` and satisfaction bookkeeping untouched -- a retried or
duplicated submission must never reset a query's delivery state.
"""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.xpath.parser import parse_query


def make_server(**kwargs):
    from tests.xpath.test_evaluator import paper_documents

    return BroadcastServer(DocumentStore(paper_documents()), **kwargs)


class TestDedup:
    def test_keyed_retry_returns_same_object(self):
        server = make_server()
        query = parse_query("/a//c")
        first = server.submit(query, 10, client_key=1)
        retry = server.submit(query, 999, client_key=1)
        assert retry is first
        assert retry.arrival_time == 10  # never reset by the retry
        assert len(server.pending) == 1
        assert server.uplink_dedup_hits == 1

    def test_same_query_different_keys_admit_separately(self):
        server = make_server()
        query = parse_query("/a//c")
        one = server.submit(query, 0, client_key=1)
        two = server.submit(query, 0, client_key=2)
        assert one is not two
        assert len(server.pending) == 2

    def test_unkeyed_submissions_never_dedup(self):
        server = make_server()
        query = parse_query("/a//c")
        one = server.submit(query, 0)
        two = server.submit(query, 0)
        assert one is not two
        assert server.uplink_dedup_hits == 0

    def test_duplicate_after_satisfaction_does_not_readmit(self):
        server = make_server()
        query = parse_query("/a//c")
        pending = server.submit(query, 0, client_key=7)
        cycle = server.build_cycle()
        assert cycle is not None
        assert pending.is_satisfied
        assert server.pending == []
        stamped = (pending.satisfied_cycle, pending.satisfied_time)

        late = server.submit(query, cycle.end_time + 5, client_key=7)
        assert late is pending
        assert server.pending == []  # still satisfied, not re-queued
        assert (pending.satisfied_cycle, pending.satisfied_time) == stamped
        assert server.build_cycle() is None  # nothing to broadcast

    def test_dedup_hit_skips_revalidation(self):
        server = make_server()
        query = parse_query("/a//c")
        server.submit(query, 0, client_key=3)
        server._resolution_cache.clear()
        # A dedup hit must not resolve at all, so a (hypothetically)
        # changed collection cannot reject or alter the admitted query.
        before = dict(server._resolution_cache)
        server.submit(query, 1, client_key=3)
        assert server._resolution_cache == before

    def test_batch_mixes_fresh_and_duplicate(self):
        server = make_server()
        qa, qb = parse_query("/a//c"), parse_query("/a/b")
        first = server.submit(qa, 0, client_key=1)
        out = server.submit_batch([qa, qb], 5, client_keys=[1, 2])
        assert out[0] is first
        assert out[1].arrival_time == 5
        assert len(server.pending) == 2

    def test_client_keys_length_mismatch(self):
        server = make_server()
        with pytest.raises(ValueError, match="one-to-one"):
            server.submit_batch([parse_query("/a")], 0, client_keys=[1, 2])


class TestAckedDeliveryInteraction:
    def test_retry_between_confirms_preserves_remaining(self):
        server = make_server(acknowledged_delivery=True)
        query = parse_query("/a//c")
        pending = server.submit(query, 0, client_key=1)
        cycle = server.build_cycle()
        received = set(list(pending.result_doc_ids)[:2])
        server.confirm_delivery(pending, received, cycle)
        remaining = set(pending.remaining_doc_ids)
        assert remaining  # partially delivered

        dup = server.submit(query, cycle.end_time, client_key=1)
        assert dup is pending
        assert set(pending.remaining_doc_ids) == remaining
        assert pending.arrival_time == 0
