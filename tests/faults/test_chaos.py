"""Chaos runs: sampled fault plans, differentials and a server machine.

The heart of the suite is the acceptance-criterion pair:

* under every sampled :func:`~repro.faults.plan.sample_fault_plan` the
  safety monitor never fires and every run drains (liveness);
* with the injectors disabled the broadcast program is byte-identical to
  the fault-free simulation -- pinned by comparing per-cycle
  :func:`~repro.broadcast.program.program_signature` streams.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.broadcast.program import program_signature
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.faults import ChaosSimulation, FaultPlan, default_fault_plan, sample_fault_plan
from repro.sim.config import IndexScheme, SimulationConfig, small_setup
from repro.sim.simulation import Simulation
from repro.xpath.parser import parse_query


def chaos_config(plan: FaultPlan, **overrides) -> SimulationConfig:
    base = dict(n_q=8, arrival_cycles=2, max_cycles=150, faults=plan)
    base.update(overrides)
    return small_setup(**base)


class _SignatureMixin:
    """Collect the program signature of every aired cycle."""

    def _record_cycle(self, cycle):
        self.signatures = getattr(self, "signatures", [])
        self.signatures.append(program_signature(cycle))
        super()._record_cycle(cycle)


class _SignedSimulation(_SignatureMixin, Simulation):
    pass


class _SignedChaos(_SignatureMixin, ChaosSimulation):
    pass


class TestSampledPlans:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_safety_and_liveness_under_sampled_plans(self, seed, nitf_docs):
        sim = ChaosSimulation(
            chaos_config(sample_fault_plan(seed)), documents=nitf_docs
        )
        result = sim.run()  # ChaosInvariantError would propagate
        assert result.completed
        assert sim.fault_stats["safety_checks"] > 0
        # Every surviving session drained.
        assert all(session.satisfied for session in sim.sessions)

    def test_default_plan_exercises_the_injectors(self, nitf_docs):
        sim = ChaosSimulation(chaos_config(default_fault_plan(3)), documents=nitf_docs)
        assert sim.run().completed
        assert sim.fault_stats["uplink_attempts"] > 0


class TestNullPlanDifferential:
    def test_program_identical_without_injectors(self, nitf_docs):
        """Acceptance pin: injectors off => byte-identical air program."""
        plain = _SignedSimulation(chaos_config(None, faults=None), documents=nitf_docs)
        plain.run()
        chaos = _SignedChaos(
            chaos_config(FaultPlan(checksum=False)), documents=nitf_docs
        )
        chaos.run()
        assert chaos.signatures == plain.signatures
        assert sum(chaos.fault_stats[k] for k in (
            "uplink_dropped", "uplink_duplicates", "uplink_rejections",
            "docs_added", "docs_removed",
        )) == 0

    def test_checksum_byte_is_the_only_difference(self, nitf_docs):
        """Null plan + checksum: programs diverge, but only by the trailer."""
        plain = _SignedSimulation(chaos_config(None, faults=None), documents=nitf_docs)
        plain.run()
        chaos = _SignedChaos(chaos_config(FaultPlan()), documents=nitf_docs)
        result = chaos.run()
        assert result.completed
        assert chaos.signatures != plain.signatures
        assert sum(chaos.fault_stats[k] for k in (
            "uplink_dropped", "uplink_duplicates", "uplink_rejections",
            "docs_added", "docs_removed",
        )) == 0
        assert chaos.config.size_model.checksum_bytes == 1


class TestTargetedPlans:
    def test_remove_heavy_plan_removes_documents(self, nitf_docs):
        plan = FaultPlan(
            seed=11, fault_cycles=6, doc_remove_prob=0.9, doc_add_prob=0.0
        )
        # Few enough queries that the removal gate (documents some
        # unsatisfied session still needs) leaves eligible candidates.
        sim = ChaosSimulation(chaos_config(plan, n_q=2), documents=nitf_docs)
        assert sim.run().completed
        assert sim.fault_stats["docs_removed"] > 0
        assert sim.fault_stats["docs_added"] == 0

    def test_overload_heavy_plan_degrades_builds(self, nitf_docs):
        plan = FaultPlan(seed=7, fault_cycles=6, overload_prob=0.9)
        sim = ChaosSimulation(chaos_config(plan), documents=nitf_docs)
        assert sim.run().completed
        assert sim.server.degraded_cycles > 0
        # Degradation ends with the fault window: recovery cycles are full builds.
        assert any(record.degraded is None for record in sim.server.records)

    def test_uplink_heavy_plan_drains(self, nitf_docs):
        plan = FaultPlan(
            seed=5,
            fault_cycles=6,
            uplink_drop_prob=0.6,
            uplink_ack_drop_prob=0.5,
            uplink_delay_bytes=128,
            retry_max_attempts=6,
        )
        sim = ChaosSimulation(chaos_config(plan), documents=nitf_docs)
        assert sim.run().completed
        assert sim.fault_stats["uplink_dropped"] > 0
        assert sim.fault_stats["uplink_duplicates"] > 0
        assert sim.server.uplink_dedup_hits > 0

    def test_run_simulation_routes_to_chaos(self, nitf_docs):
        from repro.sim.simulation import run_simulation

        result = run_simulation(
            chaos_config(FaultPlan(checksum=False)), documents=nitf_docs
        )
        assert result.completed

    def test_chaos_requires_a_plan(self, nitf_docs):
        with pytest.raises(ValueError, match="faults"):
            ChaosSimulation(small_setup(), documents=nitf_docs)

    def test_config_rejects_fault_conflicts(self):
        with pytest.raises(ValueError, match="erase_prob"):
            small_setup(faults=FaultPlan(), loss_prob=0.1)
        with pytest.raises(ValueError, match="single-channel"):
            small_setup(faults=FaultPlan(), num_data_channels=2)
        with pytest.raises(ValueError, match="two-tier"):
            small_setup(faults=FaultPlan(), scheme=IndexScheme.ONE_TIER)


class ServerChaosMachine(RuleBasedStateMachine):
    """Random keyed submits, builds, confirms and mutations on one server.

    Invariants after every step: a pending query's remaining set stays
    inside its admission-time result set *and* the live collection, and a
    keyed duplicate always resolves to the already-admitted object.
    """

    QUERIES = ("/a//c", "/a/b", "//c", "/a", "//b")

    def __init__(self):
        super().__init__()
        from tests.xpath.test_evaluator import paper_documents

        self.server = BroadcastServer(
            DocumentStore(paper_documents()), acknowledged_delivery=True
        )
        self.clock = 0
        self.admitted = {}  # (client_key, query text) -> PendingQuery
        self.removed = []  # documents taken out, eligible for re-adding

    @rule(key=st.integers(0, 5), qi=st.integers(0, len(QUERIES) - 1))
    def submit(self, key, qi):
        text = self.QUERIES[qi]
        try:
            pending = self.server.submit(parse_query(text), self.clock, client_key=key)
        except ValueError:
            return  # empty result set (after removals): NACK
        prior = self.admitted.get((key, text))
        if prior is not None and prior in self.server.pending:
            assert pending is prior  # dedup identity
            assert pending.arrival_time == prior.arrival_time
        self.admitted[(key, text)] = pending

    @rule()
    def build(self):
        cycle = self.server.build_cycle()
        if cycle is not None:
            self.clock = cycle.end_time
            self.last_cycle = cycle

    @precondition(lambda self: self.server.pending and hasattr(self, "last_cycle"))
    @rule(data=st.data())
    def confirm_subset(self, data):
        pending = data.draw(st.sampled_from(self.server.pending))
        received = data.draw(st.sets(st.sampled_from(sorted(pending.result_doc_ids))))
        self.server.confirm_delivery(pending, received, self.last_cycle)

    @precondition(lambda self: len(self.server.store.documents) > 1)
    @rule(data=st.data())
    def remove_doc(self, data):
        doc_id = data.draw(
            st.sampled_from(sorted(self.server.store.by_id))
        )
        self.removed.append(self.server.remove_document(doc_id))

    @precondition(lambda self: bool(self.removed))
    @rule()
    def readd_doc(self):
        self.server.add_document(self.removed.pop())

    @invariant()
    def remaining_within_result_and_store(self):
        store_ids = set(self.server.store.by_id)
        for pending in self.server.pending:
            assert pending.remaining_doc_ids <= pending.result_doc_ids
            assert pending.remaining_doc_ids <= store_ids
            assert not pending.is_satisfied  # satisfied queries are reaped


TestServerChaosMachine = ServerChaosMachine.TestCase
TestServerChaosMachine.settings = settings(max_examples=25, deadline=None, stateful_step_count=30)
