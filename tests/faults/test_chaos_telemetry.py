"""Chaos harness telemetry: events, flight capture, dump-on-violation."""

from __future__ import annotations

import pytest

from repro.faults.chaos import ChaosInvariantError, ChaosSimulation
from repro.faults.plan import default_fault_plan
from repro.obs.telemetry import EventLog, FlightRecorder, load_flight_record
from repro.sim.config import small_setup


@pytest.fixture(scope="module")
def chaos_config():
    return small_setup(document_count=25, n_q=6, arrival_cycles=2).with_(
        faults=default_fault_plan(3)
    )


class TestChaosEvents:
    def test_run_emits_structured_events_without_timestamps(
        self, chaos_config
    ):
        seen = []
        log = EventLog(sink=None, level="debug")
        log.add_listener(seen.append)
        ChaosSimulation(chaos_config, events=log).run()
        assert seen, "a faulted run should emit telemetry events"
        # Deterministic harness: no wall-clock timestamps, ever.
        assert all("ts" not in record for record in seen)
        kinds = {record["event"] for record in seen}
        # The default plan injects mutations and uplink faults within
        # its window; at least one of the chaos event kinds must fire.
        assert kinds & {
            "chaos_mutation",
            "chaos_uplink_faulted",
            "chaos_uplink_rejected",
        }

    def test_no_telemetry_run_unchanged(self, chaos_config):
        """Results are identical with and without the event log."""
        plain = ChaosSimulation(chaos_config).run()
        logged = ChaosSimulation(
            chaos_config, events=EventLog(sink=None, level="debug")
        ).run()
        assert plain.completed == logged.completed
        assert len(plain.cycles) == len(logged.cycles)
        assert [c.total_bytes for c in plain.cycles] == [
            c.total_bytes for c in logged.cycles
        ]


class TestChaosFlight:
    def test_flight_captures_cycles_and_context(self, chaos_config):
        flight = FlightRecorder(cycle_capacity=8)
        ChaosSimulation(chaos_config, flight=flight).run()
        assert flight.cycles_seen >= 1
        assert 1 <= len(flight.cycles) <= 8
        assert flight.context["harness"] == "chaos"
        assert flight.context["fault_seed"] == 3
        record = flight.cycles[-1]
        assert record["total_bytes"] > 0
        assert "pending_after" in record

    def test_invariant_violation_dumps_artifact(
        self, chaos_config, tmp_path, monkeypatch
    ):
        flight = FlightRecorder()
        sim = ChaosSimulation(
            chaos_config, flight=flight, flight_dir=tmp_path / "flights"
        )

        def explode():
            raise ChaosInvariantError("synthetic violation for the test")

        monkeypatch.setattr(sim, "_check_invariants", explode)
        with pytest.raises(ChaosInvariantError):
            sim.run()
        assert len(flight.dumps) == 1
        payload = load_flight_record(flight.dumps[0])
        assert payload["reason"] == "chaos-invariant"
        assert payload["context"]["harness"] == "chaos"
        assert payload["cycles"], "artifact should carry the failing cycle"
        assert any(
            e["event"] == "chaos_invariant_violated" for e in payload["events"]
        )
