"""Chaos monitors must hold across adaptive plan transitions.

The tentpole safety claim of the adaptive control plane: a mid-run K
change or policy switch never strands a query.  ChaosSimulation's
per-cycle safety audit (expected subset-of truth, received subset-of
expected) and liveness monitor run unchanged under an adaptive
controller, so these runs fail loudly if a plan transition loses a
deferred document or double-satisfies a session.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import ControlConfig
from repro.faults import ChaosSimulation, FaultPlan, sample_fault_plan
from repro.sim.config import small_setup


def adaptive_chaos_config(plan: FaultPlan, **overrides) -> "SimulationConfig":
    base = dict(
        n_q=8,
        arrival_cycles=3,
        max_cycles=300,
        cycle_data_capacity=8_000,
        faults=plan,
        adaptive=True,
        control=ControlConfig(k_max=3, cooldown_cycles=1),
    )
    base.update(overrides)
    return small_setup(**base)


class TestAdaptiveUnderFaults:
    def test_monitors_hold_across_plan_transitions(self, nitf_docs):
        """A flash crowd forces K growth while faults fire; the safety
        and liveness monitors must stay green through every re-plan."""
        sim = ChaosSimulation(
            adaptive_chaos_config(
                FaultPlan(checksum=False),
                scenario="flash",
                scenario_intensity=4.0,
            ),
            documents=nitf_docs,
        )
        result = sim.run()  # ChaosInvariantError would propagate
        assert result.completed
        assert sim.fault_stats["safety_checks"] > 0
        assert sim.controller is not None
        assert sim.controller.k_changes >= 1
        assert all(session.satisfied for session in sim.sessions)

    def test_no_query_stranded_by_k_shrink(self, nitf_docs):
        """Grow-then-shrink: after the burst drains, the idle law pulls
        K back down; documents deferred under the wide configuration
        must still be delivered (acknowledged delivery keeps them in the
        remaining sets across the shrink)."""
        sim = ChaosSimulation(
            adaptive_chaos_config(
                FaultPlan(checksum=False),
                scenario="flash",
                scenario_intensity=5.0,
                arrival_cycles=6,
                control=ControlConfig(
                    k_max=3, cooldown_cycles=1, shrink_idle_frac=0.05
                ),
            ),
            documents=nitf_docs,
        )
        result = sim.run()
        assert result.completed
        controller = sim.controller
        assert controller is not None
        ks = [plan.num_channels for plan in controller.plans]
        assert max(ks) >= 2  # grew under the burst
        assert any(
            later < earlier
            for earlier, later in zip(ks, ks[1:])
        )  # ...and shrank on the way down
        assert all(session.satisfied for session in sim.sessions)

    def test_exactly_once_across_transitions(self, nitf_docs):
        """Every satisfied session received exactly its result set --
        nothing missing after a shrink, nothing doubled after a switch."""
        sim = ChaosSimulation(
            adaptive_chaos_config(
                FaultPlan(checksum=False),
                scenario="flash",
                scenario_intensity=4.0,
            ),
            documents=nitf_docs,
        )
        assert sim.run().completed
        for session in sim.sessions:
            client = session.clients[0]
            assert client.received_doc_ids == client.expected_doc_ids

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_sampled_fault_plans_stay_green(self, seed, nitf_docs):
        """Injected faults (erasures, uplink chaos, mutations) compose
        with the controller: sampled plans never trip a monitor."""
        sim = ChaosSimulation(
            adaptive_chaos_config(sample_fault_plan(seed)),
            documents=nitf_docs,
        )
        result = sim.run()
        assert result.completed
        assert sim.fault_stats["safety_checks"] > 0
        assert all(session.satisfied for session in sim.sessions)
