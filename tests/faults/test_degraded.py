"""Overload-degraded cycle builds: the ladder, counters and client side."""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, BuildBudget, DocumentStore
from repro.client.twotier import TwoTierClient
from repro.xpath.parser import parse_query


def make_server(**kwargs):
    from tests.xpath.test_evaluator import paper_documents

    return BroadcastServer(DocumentStore(paper_documents()), **kwargs)


def overload_cycles(*cycles):
    wanted = set(cycles)
    return BuildBudget(force_overload=lambda cycle: cycle in wanted)


class TestLadder:
    def test_stale_pci_when_query_set_unchanged(self):
        server = make_server(
            acknowledged_delivery=True, build_budget=overload_cycles(1)
        )
        server.submit(parse_query("/a//c"), 0)
        first = server.build_cycle()
        assert first.degraded is None
        second = server.build_cycle()
        assert second.degraded == "pci-stale"
        assert server.records[-1].degraded == "pci-stale"
        assert server.degraded_cycles == 1
        assert server.cache.stats["pci_stale_served"] == 1
        # The stale PCI is literally last cycle's object.
        assert second.pci is first.pci

    def test_unpruned_ci_on_cold_cache(self):
        server = make_server(build_budget=overload_cycles(0))
        server.submit(parse_query("/a//c"), 0)
        cycle = server.build_cycle()
        assert cycle.degraded == "ci-unpruned"
        stats = server.records[-1].pruning
        assert stats.nodes_before == stats.nodes_after  # no pruning happened
        assert cycle.pci.node_count == stats.nodes_before

    def test_unpruned_ci_when_query_set_changed(self):
        server = make_server(
            acknowledged_delivery=True, build_budget=overload_cycles(1)
        )
        server.submit(parse_query("/a//c"), 0)
        first = server.build_cycle()
        server.submit(parse_query("/a/b"), first.end_time)
        second = server.build_cycle()
        assert second.degraded == "ci-unpruned"

    def test_unpruned_ci_without_caches(self):
        server = make_server(
            enable_caches=False,
            acknowledged_delivery=True,
            build_budget=overload_cycles(1),
        )
        server.submit(parse_query("/a//c"), 0)
        server.build_cycle()
        assert server.build_cycle().degraded == "ci-unpruned"

    def test_degraded_output_never_cached(self):
        server = make_server(
            acknowledged_delivery=True, build_budget=overload_cycles(1)
        )
        server.submit(parse_query("/a//c"), 0)
        server.build_cycle()
        misses = server.cache.stats["pci_misses"]
        assert server.build_cycle().degraded == "pci-stale"
        third = server.build_cycle()
        # Recovery: the full build re-prunes; the degraded cycle left no
        # trace in the PCI layer (the stale entry it served is still the
        # cycle-0 one, now reusable as a hit).
        assert third.degraded is None
        assert server.cache.stats["pci_misses"] == misses

    def test_degraded_cycles_air_back_to_back(self):
        server = make_server(
            acknowledged_delivery=True,
            build_budget=overload_cycles(0, 1, 2),
        )
        server.submit(parse_query("/a//c"), 0)
        clock = 0
        for _ in range(3):
            cycle = server.build_cycle()
            assert cycle is not None and cycle.degraded is not None
            assert cycle.start_time == clock  # no stall between cycles
            clock = cycle.end_time
        assert server.degraded_cycles == 3


class TestBudgetTriggers:
    def test_byte_cap(self):
        server = make_server(build_budget=BuildBudget(max_requested_bytes=1))
        server.submit(parse_query("/a//c"), 0)
        assert server.build_cycle().degraded == "ci-unpruned"

    def test_time_cap_with_injected_clock(self):
        ticks = iter((0.0, 10.0, 20.0, 30.0))
        budget = BuildBudget(max_build_seconds=5.0, clock=lambda: next(ticks))
        server = make_server(build_budget=budget)
        server.submit(parse_query("/a//c"), 0)
        assert server.build_cycle().degraded == "ci-unpruned"

    def test_within_budget_builds_normally(self):
        server = make_server(
            build_budget=BuildBudget(
                max_requested_bytes=10**9, max_build_seconds=1e6
            )
        )
        server.submit(parse_query("/a//c"), 0)
        assert server.build_cycle().degraded is None
        assert server.degraded_cycles == 0


class TestClientDeferral:
    def test_fresh_client_defers_on_stale_pci(self):
        server = make_server(
            acknowledged_delivery=True, build_budget=overload_cycles(1)
        )
        query = parse_query("/a//c")
        server.submit(query, 0)
        server.build_cycle()
        stale = server.build_cycle()
        assert stale.degraded == "pci-stale"

        client = TwoTierClient(query, stale.start_time)
        client.on_cycle(stale)
        assert client.expected_doc_ids is None  # deferred the index read
        assert client.metrics.probe_bytes > 0  # but paid the probe
        assert client.metrics.index_bytes == 0
        assert client.metrics.doc_bytes == 0

    def test_locked_client_keeps_consuming_stale_cycles(self):
        server = make_server(
            acknowledged_delivery=True, build_budget=overload_cycles(1)
        )
        query = parse_query("/a//c")
        server.submit(query, 0)
        first = server.build_cycle()
        client = TwoTierClient(query, 0)
        client.on_cycle(first)
        assert client.expected_doc_ids is not None
        stale = server.build_cycle()
        client.on_cycle(stale)  # no deferral once the set is locked

    def test_fresh_client_reads_unpruned_ci(self):
        server = make_server(build_budget=overload_cycles(0))
        query = parse_query("/a//c")
        server.submit(query, 0)
        cycle = server.build_cycle()
        assert cycle.degraded == "ci-unpruned"
        client = TwoTierClient(query, 0)
        client.on_cycle(cycle)
        # The unpruned CI is complete, so the one-shot read is safe.
        assert client.expected_doc_ids == frozenset({1, 2, 3, 4})
