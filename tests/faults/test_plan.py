"""Unit and property tests for :mod:`repro.faults.plan`."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.faults.plan import (
    FaultChannelModel,
    FaultPlan,
    default_fault_plan,
    sample_fault_plan,
)


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["uplink_drop_prob", "corrupt_prob", "erase_prob", "overload_prob"]
    )
    def test_probabilities_bounded(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.0})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    def test_corruption_requires_checksum(self):
        with pytest.raises(ValueError, match="checksum"):
            FaultPlan(corrupt_prob=0.1, checksum=False)
        FaultPlan(corrupt_prob=0.1, checksum=True)  # fine

    def test_retry_attempts_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(retry_max_attempts=0)

    def test_budgets_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(build_budget_bytes=0)
        with pytest.raises(ValueError):
            FaultPlan(build_budget_seconds=0.0)

    def test_null_plan_detection(self):
        assert FaultPlan().is_null
        assert FaultPlan(checksum=False).is_null  # checksum is layout, not a fault
        assert not default_fault_plan().is_null
        assert not FaultPlan(uplink_delay_bytes=1).is_null


class TestWindowing:
    def test_fault_window(self):
        plan = FaultPlan(fault_cycles=3)
        assert plan.active(0) and plan.active(2)
        assert not plan.active(3) and not plan.active(100)

    def test_unbounded_window(self):
        assert FaultPlan(fault_cycles=None).active(10**9)

    def test_overload_and_mutation_stop_with_window(self):
        plan = FaultPlan(
            fault_cycles=2, overload_prob=0.99, doc_add_prob=0.99, doc_remove_prob=0.99
        )
        assert not plan.overloaded(5)
        assert plan.mutation(5) is None


class TestUplinkOutcome:
    def test_null_plan_is_immediate(self):
        outcome = FaultPlan().uplink_outcome(7, 1234)
        assert outcome.deliveries == (1234,)
        assert outcome.ack_time == 1234
        assert outcome.attempts == 1
        assert outcome.duplicate_deliveries == 0

    def test_deterministic_replay(self):
        plan = default_fault_plan(5)
        first = plan.uplink_outcome(3, 100)
        second = plan.uplink_outcome(3, 100)
        assert first == second

    def test_clients_independent(self):
        plan = FaultPlan(uplink_drop_prob=0.5, retry_max_attempts=5)
        outcomes = {plan.uplink_outcome(key, 0) for key in range(32)}
        assert len(outcomes) > 1  # not all dialogues identical

    @given(seed=st.integers(0, 10_000), client=st.integers(0, 50))
    def test_outcome_invariants(self, seed, client):
        plan = sample_fault_plan(seed)
        outcome = plan.uplink_outcome(client, 500)
        # The final attempt always gets through and is acknowledged.
        assert len(outcome.deliveries) >= 1
        assert outcome.attempts <= plan.retry_max_attempts
        assert outcome.ack_time >= 500
        # Deliveries happen in submission order, strictly spaced by backoff.
        assert list(outcome.deliveries) == sorted(outcome.deliveries)
        assert all(t >= 500 for t in outcome.deliveries)
        assert outcome.dropped_attempts + len(outcome.deliveries) == outcome.attempts


class TestChannelModel:
    def test_windowed_losslessness(self):
        model = FaultChannelModel(loss_prob=0.9, seed=1, fault_cycles=2)
        assert any(model.packet_lost(1, 0, k) for k in range(20))
        assert not any(model.packet_lost(1, 5, k) for k in range(20))
        assert not model.span_lost(1, 5, 0, 100)

    def test_corruption_counts_as_loss(self):
        model = FaultChannelModel(loss_prob=0.0, seed=1, corrupt_prob=0.5)
        assert not model.is_lossless
        assert any(model.packet_lost(1, 0, k) for k in range(20))

    def test_plan_channel_model_round_trip(self):
        plan = FaultPlan(erase_prob=0.1, corrupt_prob=0.2, fault_cycles=4)
        model = plan.channel_model()
        assert model.loss_prob == 0.1
        assert model.corrupt_prob == 0.2
        assert model.fault_cycles == 4

    def test_span_lost_is_one_deterministic_draw(self):
        model = FaultChannelModel(loss_prob=0.3, seed=9, corrupt_prob=0.1)
        draws = {model.span_lost(2, 1, 40, 6) for _ in range(10)}
        assert len(draws) == 1  # pure function of the coordinates


class TestSampling:
    @given(seed=st.integers(0, 10_000))
    def test_sampled_plans_are_valid_and_deterministic(self, seed):
        plan = sample_fault_plan(seed)
        assert plan == sample_fault_plan(seed)
        assert plan.checksum  # corruption may be drawn, so checksum stays on
        assert plan.fault_cycles is not None  # liveness must be decidable

    def test_with_override(self):
        plan = default_fault_plan().with_(overload_prob=0.0)
        assert plan.overload_prob == 0.0
        assert plan.uplink_drop_prob == default_fault_plan().uplink_drop_prob
