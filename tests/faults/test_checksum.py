"""Per-packet checksum accounting across the air program.

The checksum trailer reserves bytes of every packet, shrinking the
usable payload; every packetised structure (packed index, second-tier
offset list, document frames) must charge it, and the cycle layout must
carry it so clients and the program signature see it.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.broadcast.packets import CycleLayout, PacketKind, Segment
from repro.broadcast.program import build_cycle_program, program_signature
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.index.packing import pack_index
from repro.index.sizes import PAPER_SIZE_MODEL, SizeModel
from repro.xpath.parser import parse_query


CHECKSUMMED = replace(PAPER_SIZE_MODEL, checksum_bytes=16)


def paper_store(size_model=PAPER_SIZE_MODEL):
    from tests.xpath.test_evaluator import paper_documents

    return DocumentStore(paper_documents(), size_model=size_model)


class TestSizeModel:
    def test_payload_shrinks_by_checksum(self):
        assert CHECKSUMMED.payload_bytes == PAPER_SIZE_MODEL.packet_bytes - 16
        assert PAPER_SIZE_MODEL.payload_bytes == PAPER_SIZE_MODEL.packet_bytes

    def test_packets_for_uses_payload(self):
        # 128 bytes fit one clean packet; with a 16-byte trailer they spill.
        assert PAPER_SIZE_MODEL.packets_for(128) == 1
        assert CHECKSUMMED.packets_for(128) == 2

    def test_checksum_cannot_eat_the_packet(self):
        with pytest.raises(ValueError, match="payload"):
            SizeModel(packet_bytes=16, checksum_bytes=9)
        with pytest.raises(ValueError):
            SizeModel(checksum_bytes=-1)

    def test_zero_checksum_collapses_to_paper_model(self):
        assert replace(CHECKSUMMED, checksum_bytes=0) == PAPER_SIZE_MODEL


class TestLayout:
    def test_layout_validation(self):
        segment = (Segment(PacketKind.DATA, 0, 128),)
        with pytest.raises(ValueError):
            CycleLayout(segment, packet_bytes=128, checksum_bytes=128)
        with pytest.raises(ValueError):
            CycleLayout(segment, packet_bytes=128, checksum_bytes=-1)
        layout = CycleLayout(segment, packet_bytes=128, checksum_bytes=16)
        assert layout.payload_bytes == 112


class TestIndexAccounting:
    @staticmethod
    def _packed(size_model):
        store = paper_store(size_model=size_model)
        server = BroadcastServer(store)
        server.submit(parse_query("/a//c"), 0)
        return pack_index(server.build_cycle().pci, one_tier=True)

    def test_packing_charges_checksum(self):
        small = replace(PAPER_SIZE_MODEL, packet_bytes=32)
        tight = replace(small, checksum_bytes=16)
        plain = self._packed(small)
        checked = self._packed(tight)
        # Same tree, half the payload: strictly more packets on air.
        assert checked.packet_count > plain.packet_count
        # On-air size still counts whole packets, trailer included.
        assert checked.total_bytes == checked.packet_count * tight.packet_bytes

    def test_offset_list_packet_mapping_uses_payload(self):
        small = replace(PAPER_SIZE_MODEL, packet_bytes=32, checksum_bytes=8)
        store = paper_store(size_model=small)
        server = BroadcastServer(store, cycle_data_capacity=100_000)
        server.submit(parse_query("/a//c"), 0)
        cycle = server.build_cycle()
        offsets = cycle.offset_list
        assert offsets.packet_count == small.packets_for(offsets.size_bytes)
        # Entry k sits in packet (k * entry_bytes) // payload, not // packet.
        per_payload = {
            doc_id: (position * small.offset_entry_bytes + small.count_bytes)
            // small.payload_bytes
            for position, (doc_id, _offset) in enumerate(offsets.entries)
        }
        for doc_id in cycle.doc_ids:
            packets = offsets.packets_for_docs([doc_id])
            assert per_payload[doc_id] in packets


class TestProgramSignature:
    def build(self, size_model):
        store = paper_store(size_model=size_model)
        server = BroadcastServer(store)
        server.submit(parse_query("/a//c"), 0)
        return server.build_cycle()

    def test_checksum_changes_the_signature(self):
        plain = self.build(PAPER_SIZE_MODEL)
        checked = self.build(CHECKSUMMED)
        assert plain.layout.checksum_bytes == 0
        assert checked.layout.checksum_bytes == 16
        assert program_signature(plain) != program_signature(checked)

    def test_signature_stable_for_equal_models(self):
        assert program_signature(self.build(CHECKSUMMED)) == program_signature(
            self.build(CHECKSUMMED)
        )

    def test_cycle_layout_carries_size_model_checksum(self):
        cycle = self.build(CHECKSUMMED)
        assert cycle.layout.checksum_bytes == CHECKSUMMED.checksum_bytes
        assert cycle.layout.payload_bytes == CHECKSUMMED.payload_bytes
