"""Public API surface checks.

A downstream user imports from ``repro`` (and subpackage ``__init__``s);
these tests pin that every advertised name exists, that ``__all__`` is
accurate, and that the README's quickstart snippet actually runs.
"""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.xmlkit",
    "repro.xpath",
    "repro.filtering",
    "repro.dataguide",
    "repro.index",
    "repro.broadcast",
    "repro.client",
    "repro.sim",
    "repro.faults",
    "repro.baselines",
    "repro.analysis",
    "repro.experiments",
    "repro.tools",
    "repro.obs",
    "repro.obs.telemetry",
    "repro.net",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", None)
        assert exported, f"{package_name} should define __all__"
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_version_present(self):
        import repro

        assert repro.__version__

    def test_no_duplicate_exports(self):
        import repro

        assert len(repro.__all__) == len(set(repro.__all__))


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        """The exact flow the README shows."""
        from repro import (
            BroadcastServer,
            DocumentStore,
            TwoTierClient,
            generate_collection,
            generate_workload,
            nitf_like_dtd,
        )

        docs = generate_collection(nitf_like_dtd(), 30, seed=7)
        queries = generate_workload(docs, 8, seed=11)
        server = BroadcastServer(DocumentStore(docs))
        for query in queries:
            server.submit(query, arrival_time=0)
        cycle = server.build_cycle()
        client = TwoTierClient(queries[0], arrival_time=0)
        client.on_cycle(cycle)
        assert client.metrics.index_lookup_bytes > 0
        assert client.expected_doc_ids


class TestModuleDocstrings:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_every_package_documented(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 40
