"""Typing hygiene over ``src/repro``: no implicit-Optional annotations.

mypy (with ``no_implicit_optional``, see ``pyproject.toml``) runs in CI
but is not part of the local toolchain, so this AST-level check enforces
the rule under the plain test suite: a parameter or annotated assignment
defaulting to ``None`` must spell out ``Optional[...]`` (or an explicit
``None``-admitting union) in its annotation.  ``store: "DocumentStore"
= None``-style hints are exactly the lie this catches -- the annotation
promises a value that is not there.
"""

from __future__ import annotations

import ast
import pathlib

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _admits_none(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return (
        "Optional" in text
        or "None" in text
        or "Any" in text
        or text.startswith("object")
    )


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _implicit_optionals(tree: ast.AST, path: pathlib.Path):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            positional = node.args.posonlyargs + node.args.args
            defaults = node.args.defaults
            for arg, default in zip(positional[len(positional) - len(defaults):],
                                    defaults):
                if (
                    _is_none(default)
                    and arg.annotation is not None
                    and not _admits_none(arg.annotation)
                ):
                    yield f"{path}:{arg.lineno}: parameter {arg.arg!r} " \
                        f"defaults to None but is annotated " \
                        f"{ast.unparse(arg.annotation)!r}"
            for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
                if (
                    default is not None
                    and _is_none(default)
                    and arg.annotation is not None
                    and not _admits_none(arg.annotation)
                ):
                    yield f"{path}:{arg.lineno}: keyword parameter {arg.arg!r} " \
                        f"defaults to None but is annotated " \
                        f"{ast.unparse(arg.annotation)!r}"
        elif isinstance(node, ast.AnnAssign):
            if (
                node.value is not None
                and _is_none(node.value)
                and not _admits_none(node.annotation)
            ):
                target = ast.unparse(node.target)
                yield f"{path}:{node.lineno}: {target!r} assigned None but " \
                    f"annotated {ast.unparse(node.annotation)!r}"


def test_no_implicit_optional_in_src():
    offences = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        offences.extend(_implicit_optionals(tree, path.relative_to(SRC.parent.parent)))
    assert not offences, "implicit Optional annotations:\n" + "\n".join(offences)


def test_checker_catches_a_planted_offence():
    """The guard itself must actually fire on the pattern it polices."""
    planted = ast.parse("def f(store: DocumentStore = None): ...")
    offences = list(_implicit_optionals(planted, pathlib.Path("planted.py")))
    assert len(offences) == 1 and "'store'" in offences[0]
