"""Process-level chaos against the real supervised cluster.

The keystone of the self-healing tier (slow; ``-m cluster``): real
``repro serve --shard`` subprocesses are SIGKILLed mid-run on a seeded
schedule while an open-loop load floods the front door.  The contract
under test is end to end:

* the supervisor's monitor restarts every killed worker (fresh epoch);
* the write-ahead journal replays admitted-but-unsatisfied queries;
* resume-mode clients reconnect and resubmit idempotently;
* **no admitted query is lost and none is double-admitted** --
  :func:`repro.net.chaos.assert_recovery` audits the journals;
* a restarted worker's broadcast is byte-identical (by program
  signature) to a clean daemon on the same shard slice.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time

import pytest

from repro.broadcast.program import program_signature
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, ClusterConfig, ClusterRouter
from repro.net.chaos import ChaosController, assert_recovery, build_chaos_schedule
from repro.net.cluster import ClusterSupervisor
from repro.net.framing import FrameKind, encode_text, read_frame
from repro.net.loadgen import build_load_plan, run_load
from repro.sim.config import small_setup
from repro.sim.simulation import build_collection, make_server
from repro.tools.persist import load_journal
from repro.xpath.parser import parse_query

NUM_SHARDS = 2
PARTITION_SEED = 5

BASE = small_setup(document_count=48, n_q=6, arrival_cycles=2)


@pytest.fixture(scope="module")
def full_docs():
    return build_collection(BASE)


def _serve_args(bandwidth=None):
    args = [
        "--count", str(BASE.document_count),
        "--seed", str(BASE.collection_seed),
        "--capacity", str(BASE.cycle_data_capacity),
        "--log-level", "warning",
    ]
    if bandwidth is not None:
        args += ["--bandwidth", str(bandwidth)]
    return args


async def _raw_command(port: int, line: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_text(line))
        await writer.drain()
        kind, payload = await read_frame(reader)
        assert kind is FrameKind.TEXT
        return payload.decode("utf-8")
    finally:
        writer.close()


async def _await_drained_journals(supervisor, num, timeout=60.0):
    """Wait until every shard's journal shows zero outstanding admits."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        states = [load_journal(supervisor.journal_path(i)) for i in range(num)]
        if all(not s.outstanding for s in states):
            return
        await asyncio.sleep(0.2)
    raise AssertionError(
        "journals never drained: "
        + str([len(s.outstanding) for s in states])
    )


async def _await_restarts(supervisor, num, timeout=120.0):
    """Wait until the monitor has healed every shard at least once.

    The load can drain before the last scheduled kill fires; the
    monitor's respawn (backoff + subprocess startup) then races the
    test teardown unless we explicitly wait for it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r >= 1 for r in supervisor.restarts):
            return
        await asyncio.sleep(0.1)
    raise AssertionError(
        f"monitor never healed every shard: restarts={supervisor.restarts} "
        f"events={supervisor.events}"
    )


@pytest.mark.cluster
class TestChaosKeystone:
    def test_every_worker_killed_no_query_lost(self, full_docs):
        """Seeded chaos SIGKILLs each worker at least once while a
        flood of resume-mode sessions runs; every session must end
        satisfied and the journals must account for every admission."""
        supervisor = ClusterSupervisor(
            NUM_SHARDS,
            partition_seed=PARTITION_SEED,
            serve_args=_serve_args(bandwidth=150_000),
            journal=True,
            restart_backoff=0.1,
            max_restarts=10,
            crash_window=60.0,
        )
        schedule = build_chaos_schedule(NUM_SHARDS, 2.5, seed=17)

        async def run():
            workers = await asyncio.to_thread(supervisor.start)
            router = ClusterRouter(
                supervisor.partition,
                workers,
                ClusterConfig(down_probe_interval=0.1),
            )
            await router.start()
            monitor = asyncio.ensure_future(
                supervisor.monitor(router, poll_interval=0.05)
            )
            try:
                plan = build_load_plan(
                    full_docs,
                    16,
                    seed=4,
                    granularity=NUM_SHARDS,
                    partition_seed=PARTITION_SEED,
                )
                chaos = ChaosController(supervisor, schedule)
                report, applied = await asyncio.gather(
                    run_load(
                        plan,
                        "127.0.0.1",
                        router.port,
                        num_workers=NUM_SHARDS,
                        resume=True,
                        max_retries=20,
                        retry_delay=0.2,
                    ),
                    chaos.run(),
                )
                await _await_restarts(supervisor, NUM_SHARDS)
                await _await_drained_journals(supervisor, NUM_SHARDS)
                return report, applied
            finally:
                monitor.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await monitor
                await router.stop()

        try:
            report, applied = asyncio.run(asyncio.wait_for(run(), timeout=300))
        finally:
            codes = supervisor.stop()

        assert report.satisfied == 16, report.describe()
        assert report.failed == 0, report.describe()
        # the schedule guarantees one kill per shard; the monitor must
        # have healed every one of them
        assert all(a["ok"] for a in applied), applied
        assert all(r >= 1 for r in supervisor.restarts), supervisor.events
        kinds = [e["kind"] for e in supervisor.events]
        assert kinds.count("restart") >= NUM_SHARDS
        assert supervisor.epochs == [r for r in supervisor.restarts]
        # safety: every admitted query reached done, none double-admitted
        audits = assert_recovery(
            [supervisor.journal_path(i) for i in range(NUM_SHARDS)]
        )
        assert all(a["resumes"] >= 1 for a in audits), audits
        # the post-chaos cluster drained cleanly
        assert codes == [0, 0]


@pytest.mark.cluster
class TestKillMidCycle:
    def test_sigkill_mid_cycle_restores_byte_identical_broadcast(
        self, full_docs
    ):
        """SIGKILL one paced worker mid-stream: the flight recorder
        dumps a crash_resume artifact, the monitor respawns the shard,
        and the restarted worker's cycles carry the same program
        signature as a clean in-process server on the same slice."""
        supervisor = ClusterSupervisor(
            1,
            partition_seed=PARTITION_SEED,
            serve_args=_serve_args(bandwidth=60_000),
            journal=True,
            flight=True,
            restart_backoff=0.1,
        )

        async def run():
            workers = await asyncio.to_thread(supervisor.start)
            router = ClusterRouter(
                supervisor.partition,
                workers,
                ClusterConfig(down_probe_interval=0.1),
            )
            await router.start()
            monitor = asyncio.ensure_future(
                supervisor.monitor(router, poll_interval=0.05)
            )
            try:
                client = AsyncTwoTierClient(
                    "//nitf",
                    port=router.port,
                    shard=0,
                    arrival_time=0,
                    client_key=77,
                    resume=True,
                    max_resumes=40,
                    resume_delay=0.1,
                )
                task = asyncio.ensure_future(client.run())

                # wait for the admission, then murder the worker while
                # the paced downlink is mid-cycle
                deadline = time.monotonic() + 60
                while True:
                    assert time.monotonic() < deadline
                    state = load_journal(supervisor.journal_path(0))
                    if state.outstanding:
                        break
                    await asyncio.sleep(0.05)
                await asyncio.sleep(0.2)  # let the stream get going
                supervisor.procs[0].kill()

                report = await asyncio.wait_for(task, timeout=120)
                return report, client
            finally:
                monitor.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await monitor
                await router.stop()

        try:
            report, client = asyncio.run(asyncio.wait_for(run(), timeout=300))
        finally:
            supervisor.stop()

        assert report.satisfied
        assert report.epoch_bumps == 1 and client.epoch == 1
        assert supervisor.restarts == [1]

        # flight artifact: the restarted worker dumped its journal
        # replay as a replayable incident snapshot
        flight_dir = supervisor.workdir / "worker-0.flight"
        dumps = list(flight_dir.glob("flight-crash_resume-*.json"))
        assert dumps, list(flight_dir.iterdir())
        snapshot = json.loads(dumps[0].read_text())
        assert snapshot["reason"] == "crash_resume"
        assert snapshot["context"]["journal_replayed"] >= 1

        # byte-identity: the post-restart broadcast must equal a clean
        # single daemon fed the same slice and the same query at t=0.
        # Signatures include the cycle number, and the resumed client
        # tunes in at whatever cycle the respawned worker is on -- so
        # the observed signatures must be a contiguous run of the
        # reference sequence, not all equal to cycle 0's.
        cfg = BASE.with_(
            num_shards=1, shard_index=0, partition_seed=PARTITION_SEED
        )
        reference = make_server(
            cfg, DocumentStore(cfg.shard_documents(full_docs), cfg.size_model)
        )
        reference.submit(parse_query("//nitf"), 0)
        ref_sigs = []
        for _ in range(64):
            cycle = reference.build_cycle()
            if cycle is None:
                break
            ref_sigs.append(program_signature(cycle))
        assert report.signatures, "no post-restart cycle decoded"
        positions = [
            ref_sigs.index(s) for s in report.signatures if s in ref_sigs
        ]
        assert len(positions) == len(report.signatures), (
            "cycle diverged from the clean reference",
            report.signatures,
        )
        assert positions == list(
            range(positions[0], positions[0] + len(positions))
        ), positions


@pytest.mark.cluster
class TestCircuitBreaker:
    def test_crash_loop_opens_breaker_and_pins_down(self):
        """A worker that dies instantly on every spawn must not be
        respawned forever: the breaker opens and the shard stays DOWN."""
        supervisor = ClusterSupervisor(
            1,
            partition_seed=PARTITION_SEED,
            serve_args=_serve_args(),
            journal=True,
            restart_backoff=0.05,
            restart_backoff_cap=0.1,
            max_restarts=2,
            crash_window=300.0,
        )

        async def run():
            workers = await asyncio.to_thread(supervisor.start)
            router = ClusterRouter(
                supervisor.partition, workers, ClusterConfig()
            )
            await router.start()
            monitor = asyncio.ensure_future(
                supervisor.monitor(router, poll_interval=0.05)
            )
            try:
                deadline = time.monotonic() + 120
                while not supervisor.broken[0]:
                    assert time.monotonic() < deadline, supervisor.events
                    if supervisor.procs[0].poll() is None:
                        supervisor.procs[0].kill()
                    await asyncio.sleep(0.05)
                # give the monitor a beat to pin the router state
                await asyncio.sleep(0.2)
                reply = await _raw_command(router.port, "TUNE SHARD=0")
                return reply
            finally:
                monitor.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await monitor
                await router.stop()

        try:
            reply = asyncio.run(asyncio.wait_for(run(), timeout=300))
        finally:
            supervisor.stop()

        assert reply.startswith("RETRY_AFTER")
        kinds = [e["kind"] for e in supervisor.events]
        assert "circuit_open" in kinds
        # the breaker stopped the respawn loop at the limit
        assert supervisor.restarts[0] <= supervisor.max_restarts
