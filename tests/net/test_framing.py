"""Wire framing: round-trips, checksum trailers, malformed input."""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, strategies as st

from repro.net.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    FrameKind,
    decode_frame,
    encode_frame,
    encode_text,
    read_frame,
    read_frame_mixed,
)


class TestRoundTrip:
    @given(
        kind=st.sampled_from(sorted(FrameKind)),
        payload=st.binary(max_size=512),
        checksum=st.integers(min_value=0, max_value=8),
    )
    def test_encode_decode_identity(self, kind, payload, checksum):
        blob = encode_frame(kind, payload, checksum)
        out_kind, out_payload, consumed = decode_frame(blob, checksum)
        assert out_kind is kind
        assert out_payload == payload
        assert consumed == len(blob)

    def test_text_helper(self):
        blob = encode_text("STATUS")
        kind, payload, _ = decode_frame(blob)
        assert kind is FrameKind.TEXT
        assert payload == b"STATUS"

    def test_back_to_back_frames(self):
        stream = encode_text("A") + encode_text("BB")
        kind, payload, consumed = decode_frame(stream)
        assert payload == b"A"
        kind, payload, _ = decode_frame(stream[consumed:])
        assert payload == b"BB"


class TestChecksum:
    def test_corrupt_payload_detected(self):
        blob = bytearray(encode_frame(FrameKind.DOC, b"hello world", 2))
        blob[8] ^= 0xFF
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(blob), 2)

    def test_corrupt_trailer_detected(self):
        blob = bytearray(encode_frame(FrameKind.INDEX, b"payload", 4))
        blob[-1] ^= 0x01
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(blob), 4)

    def test_wide_trailer_zero_padded(self):
        """checksum_bytes > 4 pads the CRC-32 on the left with zeros."""
        blob = encode_frame(FrameKind.DOC, b"x", 6)
        kind, payload, _ = decode_frame(blob, 6)
        assert (kind, payload) == (FrameKind.DOC, b"x")


class TestMalformed:
    def test_truncated_length(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00\x00")

    def test_truncated_body(self):
        blob = encode_text("STATUS")
        with pytest.raises(FrameError):
            decode_frame(blob[:-1])

    def test_unknown_kind(self):
        import struct

        blob = struct.pack(">I", 1) + b"\x7f"
        with pytest.raises(FrameError, match="unknown frame kind"):
            decode_frame(blob)

    def test_oversized_length_rejected(self):
        import struct

        blob = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"\x01"
        with pytest.raises(FrameError, match="implausible"):
            decode_frame(blob)


class TestAsyncReaders:
    def _reader_for(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_frame(self):
        async def run():
            reader = self._reader_for(encode_frame(FrameKind.DOC, b"abc", 2))
            return await read_frame(reader, 2)

        assert asyncio.run(run()) == (FrameKind.DOC, b"abc")

    def test_read_frame_eof(self):
        async def run():
            reader = self._reader_for(encode_text("HI")[:-1])
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        asyncio.run(run())

    def test_mixed_reader_switches_on_kind(self):
        """TEXT frames never carry a trailer even when binary frames do."""

        async def run():
            stream = encode_text("ACK 1 0") + encode_frame(
                FrameKind.INDEX, b"blob", 2
            )
            reader = self._reader_for(stream)
            first = await read_frame_mixed(reader, 2)
            second = await read_frame_mixed(reader, 2)
            return first, second

        first, second = asyncio.run(run())
        assert first == (FrameKind.TEXT, b"ACK 1 0")
        assert second == (FrameKind.INDEX, b"blob")
