"""Daemon telemetry plane: /metrics, /healthz, wire tracing, events,
flight recorder.

Acceptance for the telemetry PR: a scripted TCP client run produces a v3
trace where every traced query carries a complete span chain whose
latency components are non-negative and additive, and a live scrape of
``/metrics`` lints clean against the OpenMetrics grammar while covering
the server and net metric families.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro import obs
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.obs.telemetry import (
    EventLog,
    FlightRecorder,
    TelemetryConfig,
    lint_openmetrics,
    load_flight_record,
    scrape,
)
from repro.sim.config import small_setup
from repro.tools.trace import export_query_traces, load_trace


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:30])


@pytest.fixture()
def config():
    return small_setup(document_count=30)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _with_daemon(store, config, net, body):
    daemon = BroadcastDaemon(store, config, net)
    await daemon.start()
    try:
        return await body(daemon)
    finally:
        daemon.request_stop()
        await daemon.wait_done()


class TestMetricsEndpoint:
    def test_scrape_lints_and_covers_families(self, store, config):
        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            await client.run_session()
            await client.close()
            status, text = await scrape("127.0.0.1", daemon.metrics_port)
            health_status, health = await scrape(
                "127.0.0.1", daemon.metrics_port, path="/healthz"
            )
            return status, text, health_status, health, daemon.status()

        net = DaemonConfig(
            autostart=False, telemetry=TelemetryConfig(metrics_port=0)
        )
        status, text, health_status, health, daemon_status = _run(
            _with_daemon(store, config, net, body)
        )
        assert status == 200
        lint_openmetrics(text)
        # Registry-side families (spans + per-channel counters) ...
        assert "server_cycles_total" in text
        assert 'net_on_air_bytes_total{channel="0"}' in text
        assert 'span_seconds_total{span="net.cycle_build"}' in text
        # ... and daemon-stat families, agreeing with STATUS.
        assert f"net_queries_admitted_total {daemon_status['admitted']}" in text
        assert "net_connections_total 1" in text
        assert health_status == 200
        assert json.loads(health)["status"] == "ok"

    def test_healthz_reports_draining(self, store, config):
        async def body(daemon):
            code_live, payload_live = daemon._health()
            daemon._draining = True
            code_drain, payload_drain = daemon._health()
            daemon._draining = False
            return code_live, payload_live, code_drain, payload_drain

        net = DaemonConfig(
            autostart=False, telemetry=TelemetryConfig(metrics_port=0)
        )
        code_live, payload_live, code_drain, payload_drain = _run(
            _with_daemon(store, config, net, body)
        )
        assert code_live == 200 and payload_live["status"] == "ok"
        assert code_drain == 503 and payload_drain["status"] == "draining"

    def test_registry_restored_after_stop(self, store, config):
        async def body(daemon):
            assert obs.is_enabled()
            return True

        net = DaemonConfig(
            autostart=False, telemetry=TelemetryConfig(metrics_port=0)
        )
        assert not obs.is_enabled()
        assert _run(_with_daemon(store, config, net, body))
        assert not obs.is_enabled()

    def test_no_telemetry_means_no_registry_no_port(self, store, config):
        async def body(daemon):
            return daemon.metrics_port, obs.is_enabled()

        port, enabled = _run(
            _with_daemon(store, config, DaemonConfig(autostart=False), body)
        )
        assert port is None
        assert not enabled


class TestWireTracing:
    def test_trace_echo_only_when_requested(self, store, config):
        from repro.net.framing import FrameKind, encode_text, read_frame

        async def one(port, line):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(encode_text(line))
                await writer.drain()
                kind, payload = await read_frame(reader)
                assert kind is FrameKind.TEXT
                return payload.decode("utf-8")
            finally:
                writer.close()

        async def body(daemon):
            plain = await one(daemon.port, "SUBMIT AT=0 //nitf")
            traced = await one(daemon.port, "SUBMIT AT=0 TRACE= //body")
            named = await one(daemon.port, "SUBMIT AT=0 TRACE=abc //head")
            return plain, traced, named

        net = DaemonConfig(autostart=False)
        plain, traced, named = _run(_with_daemon(store, config, net, body))
        assert "TRACE=" not in plain, "untraced SUBMIT must not grow"
        assert traced.split()[-1].startswith("TRACE=")
        assert named.split()[-1] == "TRACE=abc"

    def test_end_to_end_components_are_additive(self, store, config):
        """Acceptance: full span chain, non-negative additive components."""

        async def body(daemon):
            clients = [
                AsyncTwoTierClient(
                    q, port=daemon.port, arrival_time=0, trace=True
                )
                for q in ("//nitf", "//body", "//head")
            ]
            for c in clients:
                await c.connect()
                await c.tune()
            for c in clients:
                await c.submit()
            daemon.start_broadcast()
            reports = await asyncio.gather(*(c.run_session() for c in clients))
            for c in clients:
                await c.close()
            return reports

        net = DaemonConfig(autostart=False)
        reports = _run(_with_daemon(store, config, net, body))
        assert all(r.satisfied for r in reports)
        for report in reports:
            trace = report.trace
            assert trace is not None
            comp = trace.components()
            parts = ("queue", "build", "on_air", "tune")
            for part in parts:
                assert comp[f"{part}_seconds"] >= 0.0
            assert sum(
                comp[f"{p}_seconds"] for p in parts
            ) == pytest.approx(comp["total_seconds"])
            spans = trace.spans()
            assert spans[0]["name"] == "query"
            assert {s["name"] for s in spans[1:]} == {
                "admit", "queue", "build", "on_air", "tune"
            }

    def test_v3_artifact_round_trip(self, store, config, tmp_path):
        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0, trace=True
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            report = await client.run_session()
            await client.close()
            return report

        net = DaemonConfig(autostart=False)
        report = _run(_with_daemon(store, config, net, body))
        path = export_query_traces([report.trace], tmp_path / "wire.jsonl")
        records = load_trace(path)
        assert records[0]["format"] == 3
        traces = [r for r in records if r["kind"] == "query_trace"]
        assert len(traces) == 1
        assert traces[0]["query"] == "//nitf"

        from repro.obs.report import report_from_trace

        rendered = report_from_trace(records).render()
        assert "Wire latency breakdown" in rendered

    def test_untraced_client_unchanged(self, store, config):
        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            report = await client.run_session()
            await client.close()
            return report

        report = _run(
            _with_daemon(store, config, DaemonConfig(autostart=False), body)
        )
        assert report.satisfied
        assert report.trace is None


class TestEventsAndFlight:
    def test_daemon_emits_structured_events(self, store, config):
        sink = io.StringIO()

        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            await client.run_session()
            await client.close()
            return True

        net = DaemonConfig(
            autostart=False,
            telemetry=TelemetryConfig(
                events=EventLog(sink=sink, level="debug")
            ),
        )
        _run(_with_daemon(store, config, net, body))
        events = [json.loads(l)["event"] for l in sink.getvalue().splitlines()]
        assert "connection_open" in events
        assert "admit" in events
        assert "cycle_built" in events
        assert "cycle_streamed" in events
        assert "drain_begin" in events
        assert "server_bye" in events

    def test_err_reply_dumps_flight(self, store, config, tmp_path):
        flight = FlightRecorder()

        async def body(daemon):
            from repro.net.framing import FrameKind, encode_text, read_frame

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port
            )
            try:
                writer.write(encode_text("SUBMIT //no(t)valid"))
                await writer.drain()
                kind, payload = await read_frame(reader)
                return payload.decode("utf-8")
            finally:
                writer.close()

        net = DaemonConfig(
            autostart=False,
            telemetry=TelemetryConfig(
                flight=flight, flight_dir=tmp_path / "flights"
            ),
        )
        reply = _run(_with_daemon(store, config, net, body))
        assert reply.startswith("ERR")
        assert len(flight.dumps) == 1
        payload = load_flight_record(flight.dumps[0])
        assert payload["reason"] == "err"
        assert payload["context"]["documents"] == 30
        assert any(
            e["event"] == "uplink_err" for e in payload["events"]
        )

    def test_flight_captures_recent_cycles(self, store, config):
        flight = FlightRecorder(cycle_capacity=4)

        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            await client.run_session()
            await client.close()
            return daemon.cycles_streamed

        net = DaemonConfig(
            autostart=False, telemetry=TelemetryConfig(flight=flight)
        )
        streamed = _run(_with_daemon(store, config, net, body))
        assert streamed >= 1
        assert 1 <= len(flight.cycles) <= 4
        record = flight.cycles[-1]
        assert record["total_bytes"] > 0
        assert "signature" in record
        assert record["doc_ids"]

    def test_status_mirrors_stats_dataclass(self, store, config):
        async def body(daemon):
            client = AsyncTwoTierClient(
                "//nitf", port=daemon.port, arrival_time=0
            )
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            await client.run_session()
            await client.close()
            return daemon.status(), daemon.stats

        status, stats = _run(
            _with_daemon(store, config, DaemonConfig(autostart=False), body)
        )
        assert status["admitted"] == stats.admitted_total
        assert status["rejected"] == stats.rejected_total
        assert stats.cycles_streamed >= 1
        assert stats.bytes_streamed > 0
        assert stats.rejected_total == (
            stats.rejected_overload + stats.rejected_closed
        )
