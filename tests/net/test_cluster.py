"""The front-door router: routing, admission, aggregation, supervision.

In-process tests (tier-1) run real daemons and a real router inside one
event loop: shard-pinned routing, the query-hash fallback, wrong-shard
rejection at the worker, cluster-wide RETRY_AFTER admission, STATUS and
``/metrics`` aggregation, and MOVED redirects end-to-end.

The ``cluster``-marked tests (excluded from tier-1; ``-m cluster``)
additionally exercise the real deployment shape: ``repro serve --shard
i/N`` worker subprocesses under a :class:`ClusterSupervisor`, and the
``serve --workers N`` CLI entry point with SIGINT drain.
"""

from __future__ import annotations

import asyncio
import json
import signal
import subprocess
import sys
import time

import pytest

from repro.broadcast.partition import PartitionMap
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, Backpressure, BroadcastDaemon, DaemonConfig
from repro.net.cluster import (
    ClusterConfig,
    ClusterRouter,
    ClusterSupervisor,
    WorkerAddress,
)
from repro.net.framing import FrameKind, encode_text, read_frame
from repro.net.loadgen import build_load_plan, run_load
from repro.obs.telemetry import TelemetryConfig, lint_openmetrics, scrape
from repro.sim.config import small_setup
from repro.sim.simulation import build_collection
from repro.xpath.generator import generate_workload

NUM_SHARDS = 2
PARTITION_SEED = 5

BASE = small_setup(document_count=48, n_q=6, arrival_cycles=2)


def _shard_configs():
    return [
        BASE.with_(
            num_shards=NUM_SHARDS,
            shard_index=i,
            partition_seed=PARTITION_SEED,
        )
        for i in range(NUM_SHARDS)
    ]


@pytest.fixture(scope="module")
def full_docs():
    return build_collection(BASE)


def _shard_query(full_docs, shard: int, seed: int = 33) -> str:
    """A query guaranteed to match >= 1 document of *shard*."""
    pm = PartitionMap(NUM_SHARDS, seed=PARTITION_SEED)
    docs = [d for d in full_docs if pm.shard_of(d.doc_id) == shard]
    return str(generate_workload(docs, 1, seed=seed)[0])


class _Cluster:
    """Daemons + router in this event loop, with uniform teardown."""

    def __init__(self, full_docs, config: ClusterConfig, autostart=True,
                 telemetry=False):
        self.full_docs = full_docs
        self.config = config
        self.autostart = autostart
        self.telemetry = telemetry
        self.daemons = []
        self.router = None

    async def __aenter__(self) -> "_Cluster":
        for cfg in _shard_configs():
            docs = cfg.shard_documents(self.full_docs)
            net = DaemonConfig(
                autostart=self.autostart,
                shard=cfg.shard_identity,
                telemetry=(
                    TelemetryConfig(metrics_port=0) if self.telemetry else None
                ),
            )
            daemon = BroadcastDaemon(DocumentStore(docs), cfg, net)
            await daemon.start()
            self.daemons.append(daemon)
        self.router = ClusterRouter(
            PartitionMap(NUM_SHARDS, seed=PARTITION_SEED),
            [
                WorkerAddress(i, "127.0.0.1", d.port, d.metrics_port)
                for i, d in enumerate(self.daemons)
            ],
            self.config,
        )
        await self.router.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.router.stop()
        # LIFO: each daemon's stop restores the process-wide obs
        # registry it displaced, so telemetry-enabled shards unwind
        # cleanly back to the pre-cluster state.
        for daemon in reversed(self.daemons):
            daemon.request_stop()
            await daemon.wait_done()


async def _text_roundtrip(port: int, line: str) -> str:
    """One TEXT command against the front door, first reply line back."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_text(line))
        await writer.drain()
        kind, payload = await read_frame(reader)
        assert kind is FrameKind.TEXT
        return payload.decode("utf-8")
    finally:
        writer.close()
        await writer.wait_closed()


class TestProxyRouting:
    def test_pinned_session_end_to_end(self, full_docs):
        async def run():
            async with _Cluster(full_docs, ClusterConfig()) as cluster:
                report = await AsyncTwoTierClient(
                    _shard_query(full_docs, 1),
                    port=cluster.router.port,
                    shard=1,
                ).run()
                assert report.satisfied
                assert cluster.router.stats.routed_by_shard == [0, 1]
                assert cluster.router.stats.proxied_total == 1

        asyncio.run(asyncio.wait_for(run(), timeout=60))

    def test_unpinned_submit_routes_by_query_hash(self, full_docs):
        async def run():
            async with _Cluster(full_docs, ClusterConfig()) as cluster:
                pm = cluster.router.partition
                query = _shard_query(full_docs, 0)
                want = pm.shard_for_query(query)
                reply = await _text_roundtrip(
                    cluster.router.port, f"SUBMIT {query}"
                )
                assert cluster.router.stats.routed_by_shard[want] == 1
                # the worker answered through the splice (ACK if the
                # query matches that shard, ERR otherwise -- either way
                # the reply came from the right worker)
                assert reply.split()[0] in ("ACK", "ERR")

        asyncio.run(asyncio.wait_for(run(), timeout=60))

    def test_wrong_shard_rejected_by_worker(self, full_docs):
        """The worker re-validates SHARD=: a session routed to the
        wrong worker fails loudly instead of silently serving."""

        async def run():
            async with _Cluster(full_docs, ClusterConfig()) as cluster:
                # direct to worker 0, claiming shard 1
                reply = await _text_roundtrip(
                    cluster.daemons[0].port, "TUNE SHARD=1"
                )
                assert reply.startswith("ERR wrong shard")
                reply = await _text_roundtrip(
                    cluster.daemons[0].port,
                    f"SUBMIT SHARD=1 {_shard_query(full_docs, 1)}",
                )
                assert reply.startswith("ERR wrong shard")

        asyncio.run(asyncio.wait_for(run(), timeout=60))

    def test_out_of_range_shard_rejected_at_router(self, full_docs):
        async def run():
            async with _Cluster(full_docs, ClusterConfig()) as cluster:
                reply = await _text_roundtrip(
                    cluster.router.port, "TUNE SHARD=7"
                )
                assert reply.startswith("ERR shard 7 out of range")
                reply = await _text_roundtrip(
                    cluster.router.port, "TUNE SHARD=x"
                )
                assert reply.startswith("ERR SHARD must be an integer")

        asyncio.run(asyncio.wait_for(run(), timeout=60))


class TestRedirect:
    def test_moved_is_followed_end_to_end(self, full_docs):
        async def run():
            config = ClusterConfig(redirect=True)
            async with _Cluster(full_docs, config) as cluster:
                client = AsyncTwoTierClient(
                    _shard_query(full_docs, 1),
                    port=cluster.router.port,
                    shard=1,
                )
                report = await client.run()
                assert report.satisfied
                assert cluster.router.stats.moved_total == 1
                assert cluster.router.stats.proxied_total == 0
                # the client really reconnected to the worker
                assert client.port == cluster.daemons[1].port

        asyncio.run(asyncio.wait_for(run(), timeout=60))

    def test_moved_reply_names_the_worker(self, full_docs):
        async def run():
            config = ClusterConfig(redirect=True)
            async with _Cluster(full_docs, config) as cluster:
                reply = await _text_roundtrip(
                    cluster.router.port, "TUNE SHARD=0"
                )
                word, shard, host, port = reply.split()
                assert word == "MOVED"
                assert int(shard) == 0
                assert (host, int(port)) == (
                    "127.0.0.1",
                    cluster.daemons[0].port,
                )

        asyncio.run(asyncio.wait_for(run(), timeout=60))


class TestAdmission:
    def test_cluster_wide_retry_after(self, full_docs):
        """With workers held pre-broadcast (autostart=False), pending
        queries accumulate; once their cluster-wide total reaches
        max_sessions the front door sheds the next session."""

        async def run():
            config = ClusterConfig(max_sessions=2, admission_refresh=0.0)
            async with _Cluster(
                full_docs, config, autostart=False
            ) as cluster:
                for shard in (0, 1):
                    reply = await _text_roundtrip(
                        cluster.router.port,
                        f"SUBMIT SHARD={shard} "
                        f"{_shard_query(full_docs, shard)}",
                    )
                    assert reply.startswith("ACK"), reply
                with pytest.raises(Backpressure):
                    client = AsyncTwoTierClient(
                        _shard_query(full_docs, 0),
                        port=cluster.router.port,
                        shard=0,
                    )
                    await client.connect()
                    try:
                        await client.tune()
                    finally:
                        await client.close()
                assert cluster.router.stats.rejected_overload == 1

        asyncio.run(asyncio.wait_for(run(), timeout=60))


class TestAggregation:
    def test_status_totals_and_shards(self, full_docs):
        async def run():
            async with _Cluster(full_docs, ClusterConfig()) as cluster:
                for shard in (0, 1):
                    await AsyncTwoTierClient(
                        _shard_query(full_docs, shard),
                        port=cluster.router.port,
                        shard=shard,
                    ).run()
                reply = await _text_roundtrip(cluster.router.port, "STATUS")
                word, _, rest = reply.partition(" ")
                assert word == "STATUS"
                status = json.loads(rest)
                assert status["num_shards"] == NUM_SHARDS
                assert status["workers_up"] == NUM_SHARDS
                assert status["totals"]["completed"] == 2
                assert set(status["shards"]) == {"0", "1"}
                for shard in ("0", "1"):
                    assert status["shards"][shard]["completed"] == 1
                assert status["partition"] == PartitionMap(
                    NUM_SHARDS, seed=PARTITION_SEED
                ).describe()
                assert status["router"]["routed"] == 2

        asyncio.run(asyncio.wait_for(run(), timeout=60))

    def test_front_door_metrics_aggregate_with_shard_labels(self, full_docs):
        async def run():
            config = ClusterConfig(metrics_port=0)
            async with _Cluster(
                full_docs, config, telemetry=True
            ) as cluster:
                await AsyncTwoTierClient(
                    _shard_query(full_docs, 1),
                    port=cluster.router.port,
                    shard=1,
                ).run()
                code, text = await scrape(
                    "127.0.0.1", cluster.router.metrics_port
                )
                assert code == 200
                lint_openmetrics(text)  # one TYPE per family, well-formed
                assert 'shard="0"' in text
                assert 'shard="1"' in text
                assert "router_sessions_routed" in text
                assert 'net_queries_admitted_total{shard="1"} 1' in text

        asyncio.run(asyncio.wait_for(run(), timeout=60))


@pytest.mark.cluster
class TestSupervisor:
    """Real worker subprocesses under the supervisor (slow; -m cluster)."""

    def test_two_worker_cluster_serves_a_load_plan(self, full_docs):
        serve_args = [
            "--count", str(BASE.document_count),
            "--seed", str(BASE.collection_seed),
            "--capacity", str(BASE.cycle_data_capacity),
            "--log-level", "warning",
        ]
        supervisor = ClusterSupervisor(
            2, partition_seed=PARTITION_SEED, serve_args=serve_args
        )

        async def run():
            workers = await asyncio.to_thread(supervisor.start)
            assert [w.shard for w in workers] == [0, 1]
            router = ClusterRouter(
                supervisor.partition, workers, ClusterConfig(redirect=True)
            )
            await router.start()
            try:
                plan = build_load_plan(
                    full_docs,
                    8,
                    seed=2,
                    granularity=2,
                    partition_seed=PARTITION_SEED,
                )
                return await run_load(
                    plan, "127.0.0.1", router.port, num_workers=2
                )
            finally:
                await router.stop()

        try:
            report = asyncio.run(asyncio.wait_for(run(), timeout=120))
        finally:
            codes = supervisor.stop()
        assert report.satisfied == 8
        assert report.failed == 0
        assert codes == [0, 0]  # SIGINT drained both workers cleanly


@pytest.mark.cluster
class TestServeWorkersCLI:
    """``python -m repro serve --workers N`` end to end."""

    def test_cluster_smoke_with_sigint_drain(self, tmp_path, full_docs):
        port_file = tmp_path / "front.port"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--workers", "2",
                "--partition-seed", str(PARTITION_SEED),
                "--count", str(BASE.document_count),
                "--seed", str(BASE.collection_seed),
                "--capacity", str(BASE.cycle_data_capacity),
                "--redirect",
                "--port", "0",
                "--port-file", str(port_file),
                "--log-level", "warning",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    raise AssertionError(
                        f"serve exited early: {proc.communicate()[1].decode()}"
                    )
                if port_file.exists() and port_file.read_text().strip():
                    break
                time.sleep(0.05)
            port = int(port_file.read_text().strip())

            async def drive():
                plan = build_load_plan(
                    full_docs,
                    4,
                    seed=6,
                    granularity=2,
                    partition_seed=PARTITION_SEED,
                )
                return await run_load(plan, "127.0.0.1", port, num_workers=2)

            report = asyncio.run(asyncio.wait_for(drive(), timeout=120))
            assert report.satisfied == 4
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                code = proc.wait(timeout=120)
            except subprocess.TimeoutExpired:
                proc.kill()
                raise
        assert code == 0, proc.communicate()[1].decode()


@pytest.mark.cluster
class TestSupervisorFailFast:
    """The port-file handshake must fail fast, not time out."""

    def test_worker_dead_before_bind_raises_with_log_tail(self, tmp_path):
        supervisor = ClusterSupervisor(
            2,
            partition_seed=PARTITION_SEED,
            # an unreadable collection kills the worker before it binds
            serve_args=["--collection", str(tmp_path / "no-such-collection")],
            workdir=tmp_path / "cluster",
            startup_timeout=120.0,
        )
        t0 = time.monotonic()
        try:
            with pytest.raises(RuntimeError) as excinfo:
                supervisor.start()
        finally:
            supervisor.stop()
        # fail-fast: the exit was noticed, not the 120s timeout
        assert time.monotonic() - t0 < 60
        message = str(excinfo.value)
        assert "before binding" in message
        assert "exited with" in message
        assert "log tail" in message
        # every already-spawned worker was reaped, none leaked
        assert all(proc.poll() is not None for proc in supervisor.procs)
