"""The load generator's plans are deterministic and well-formed.

Open-loop comparisons (the scale bench's 1-vs-N ratio) are only valid
when both runs serve the same offered load, so the plan builder's
determinism is pinned: same seed -> byte-identical arrival schedule,
per-session queries and client keys.  The shard-aware properties --
every query matches at least one document of its own shard, plans nest
onto smaller worker counts -- are what keep cluster replays free of
empty-result admission errors.
"""

from __future__ import annotations

import pytest

from repro.broadcast.partition import PartitionMap
from repro.filtering.yfilter import YFilterEngine
from repro.net.loadgen import build_load_plan
from repro.sim.config import SimulationConfig
from repro.sim.simulation import build_collection
from repro.xpath.parser import parse_query

GRANULARITY = 4
PARTITION_SEED = 3


@pytest.fixture(scope="module")
def documents():
    return build_collection(SimulationConfig(document_count=64))


def _plan(documents, seed=9, rate=None):
    return build_load_plan(
        documents,
        24,
        seed=seed,
        rate=rate,
        granularity=GRANULARITY,
        partition_seed=PARTITION_SEED,
    )


class TestDeterminism:
    def test_same_seed_same_plan(self, documents):
        a = _plan(documents, seed=9, rate=40.0)
        b = _plan(documents, seed=9, rate=40.0)
        assert a == b  # frozen dataclasses: full structural equality
        assert [s.start_s for s in a.sessions] == [
            s.start_s for s in b.sessions
        ]
        assert [s.query for s in a.sessions] == [s.query for s in b.sessions]
        assert [s.client_key for s in a.sessions] == [
            s.client_key for s in b.sessions
        ]

    def test_different_seed_diverges(self, documents):
        a = _plan(documents, seed=9, rate=40.0)
        b = _plan(documents, seed=10, rate=40.0)
        assert a != b
        assert [s.query for s in a.sessions] != [s.query for s in b.sessions]

    def test_client_keys_unique(self, documents):
        plan = _plan(documents)
        keys = [s.client_key for s in plan.sessions]
        assert len(set(keys)) == len(keys)


class TestArrivals:
    def test_flood_mode_all_arrive_at_zero(self, documents):
        plan = _plan(documents, rate=None)
        assert all(s.start_s == 0.0 for s in plan.sessions)

    def test_poisson_arrivals_strictly_increase(self, documents):
        plan = _plan(documents, rate=200.0)
        starts = [s.start_s for s in plan.sessions]
        assert starts == sorted(starts)
        assert all(b > a for a, b in zip(starts, starts[1:]))
        assert starts[0] > 0.0


class TestShardPlacement:
    def test_every_query_matches_its_own_shard(self, documents):
        """The daemon rejects empty-result queries, so each session's
        query must match >= 1 document of the shard it targets."""
        plan = _plan(documents)
        pm = PartitionMap(GRANULARITY, seed=PARTITION_SEED)
        by_shard = pm.partition([d.doc_id for d in documents])
        docs_by_id = {d.doc_id: d for d in documents}
        for spec in plan.sessions:
            engine = YFilterEngine.from_queries([parse_query(spec.query)])
            shard_docs = [docs_by_id[i] for i in by_shard[spec.shard]]
            result = engine.filter_collection(shard_docs)
            assert result.requested_doc_ids, (
                f"session {spec.index}: query {spec.query!r} matches "
                f"nothing on shard {spec.shard}"
            )

    def test_worker_for_nests_onto_smaller_clusters(self, documents):
        plan = _plan(documents)
        pm4 = PartitionMap(GRANULARITY, seed=PARTITION_SEED)
        pm2 = PartitionMap(2, seed=PARTITION_SEED)
        for spec in plan.sessions:
            assert plan.worker_for(spec, 1) == 0
            assert plan.worker_for(spec, GRANULARITY) == spec.shard
            # the 2-way collapse must agree with the 2-way map itself
            # for every document of the session's 4-way shard
            two = plan.worker_for(spec, 2)
            assert two == spec.shard * 2 // GRANULARITY
            assert two in (0, 1)
        with pytest.raises(ValueError):
            plan.worker_for(plan.sessions[0], 3)

    def test_empty_shard_rejected(self, documents):
        with pytest.raises(ValueError, match="owns no documents|grow"):
            build_load_plan(
                documents[:2], 4, granularity=GRANULARITY, seed=1
            )
