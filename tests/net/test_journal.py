"""Crash-resume through the write-ahead journal, in one process.

``daemon.abort()`` is the in-process stand-in for ``SIGKILL``: no
drain, no ``SERVER_BYE``, sockets RST, journal left exactly as the
last flushed record put it.  A successor daemon booted on the same
journal (with a bumped ShardIdentity epoch) must rehydrate every
admitted-but-unsatisfied query and nothing else -- the multi-process
version of the same contract lives in ``test_chaos_cluster.py``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json

import pytest

from repro.broadcast.partition import PartitionMap, ShardIdentity
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.net.framing import FrameKind, encode_text, read_frame
from repro.sim.config import small_setup
from repro.tools.persist import QueryJournal, load_journal


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:30])


@pytest.fixture()
def config():
    return small_setup(document_count=30)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def _identity(epoch: int = 0) -> ShardIdentity:
    return ShardIdentity(0, PartitionMap(1, seed=0), epoch=epoch)


async def _raw_command(port: int, line: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_text(line))
        await writer.drain()
        kind, payload = await read_frame(reader)
        assert kind is FrameKind.TEXT
        return payload.decode("utf-8")
    finally:
        writer.close()


class TestCrashResume:
    def test_abort_preserves_admitted_queries(self, store, config, tmp_path):
        """Admits journaled pre-ACK survive an abort; dones do not."""
        path = tmp_path / "shard.journal"

        async def crash():
            daemon = BroadcastDaemon(
                store,
                config,
                DaemonConfig(
                    autostart=False,
                    shard=_identity(),
                    journal=QueryJournal(path),
                ),
            )
            await daemon.start()
            ack1 = await _raw_command(daemon.port, "SUBMIT AT=0 KEY=5 //nitf")
            ack2 = await _raw_command(
                daemon.port, "SUBMIT AT=0 KEY=6 //nitf/head"
            )
            assert ack1.startswith("ACK") and ack2.startswith("ACK")
            await daemon.abort()

        _run(crash())
        state = load_journal(path)
        assert [e.query for e in state.outstanding] == ["//nitf", "//nitf/head"]
        assert [e.client_key for e in state.outstanding] == [5, 6]

        async def resume():
            daemon = BroadcastDaemon(
                store,
                config,
                DaemonConfig(
                    autostart=False,
                    shard=_identity(epoch=1),
                    journal=QueryJournal(path),
                ),
            )
            await daemon.start()
            try:
                status = json.loads(
                    (await _raw_command(daemon.port, "STATUS")).split(" ", 1)[1]
                )
                return daemon.journal_replayed, status
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        replayed, status = _run(resume())
        assert replayed == 2
        assert status["pending"] >= 2
        assert status["epoch"] == 1
        assert status["journal_replayed"] == 2
        # the compacted journal re-admitted both under the new epoch
        state = load_journal(path)
        assert state.resumes == 1
        assert all(e.epoch == 1 for e in state.admits)
        assert {e.client_key for e in state.admits} == {5, 6}

    def test_satisfied_queries_are_not_replayed(self, store, config, tmp_path):
        path = tmp_path / "shard.journal"

        async def serve_and_satisfy():
            daemon = BroadcastDaemon(
                store,
                config,
                DaemonConfig(shard=_identity(), journal=QueryJournal(path)),
            )
            await daemon.start()
            try:
                report = await AsyncTwoTierClient(
                    "//nitf", port=daemon.port, client_key=9
                ).run()
                assert report.satisfied
                # the done record trails the cycle that satisfied the
                # query; wait for the broadcast loop to write it
                deadline = asyncio.get_running_loop().time() + 30
                while not load_journal(path).outstanding == []:
                    if asyncio.get_running_loop().time() > deadline:
                        break
                    await asyncio.sleep(0.05)
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        _run(serve_and_satisfy())
        state = load_journal(path)
        assert state.outstanding == []
        assert len(state.admits) == 1 and len(state.done_ids) == 1

        async def reboot():
            daemon = BroadcastDaemon(
                store,
                config,
                DaemonConfig(
                    autostart=False,
                    shard=_identity(epoch=1),
                    journal=QueryJournal(path),
                ),
            )
            await daemon.start()
            try:
                return daemon.journal_replayed
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        assert _run(reboot()) == 0

    def test_unjournaled_daemon_unchanged(self, store, config):
        """No journal configured -> no journal file, no status key."""

        async def body():
            daemon = BroadcastDaemon(
                store, config, DaemonConfig(autostart=False)
            )
            await daemon.start()
            try:
                await _raw_command(daemon.port, "SUBMIT AT=0 //nitf")
                return json.loads(
                    (await _raw_command(daemon.port, "STATUS")).split(" ", 1)[1]
                )
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        status = _run(body())
        assert "journal_replayed" not in status
        assert status["redelivered"] == 0


class TestRedelivery:
    def test_resubmit_after_satisfaction_readmits(self, store, config):
        """A keyed resubmit of an already-satisfied query must not be
        swallowed by the uplink dedup: the daemon forgets the dedup
        entry and re-admits, because the docs it already aired will
        never re-air on their own for a client that missed them."""

        async def body():
            daemon = BroadcastDaemon(store, config, DaemonConfig())
            await daemon.start()
            try:
                report = await AsyncTwoTierClient(
                    "//nitf", port=daemon.port, client_key=11
                ).run()
                assert report.satisfied
                reply = await _raw_command(
                    daemon.port, "SUBMIT AT=0 KEY=11 //nitf"
                )
                assert reply.startswith("ACK")
                status = json.loads(
                    (await _raw_command(daemon.port, "STATUS")).split(" ", 1)[1]
                )
                return status
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        status = _run(body())
        assert status["redelivered"] == 1
        assert status["admitted"] == 2

    def test_pending_resubmit_still_dedups(self, store, config):
        """While the original is *unsatisfied*, the dedup holds: same
        key + query -> same query id, no second admission."""

        async def body():
            daemon = BroadcastDaemon(
                store, config, DaemonConfig(autostart=False)
            )
            await daemon.start()
            try:
                first = await _raw_command(
                    daemon.port, "SUBMIT AT=0 KEY=3 //nitf"
                )
                second = await _raw_command(
                    daemon.port, "SUBMIT AT=0 KEY=3 //nitf"
                )
                status = json.loads(
                    (await _raw_command(daemon.port, "STATUS")).split(" ", 1)[1]
                )
                return first, second, status
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        first, second, status = _run(body())
        assert first.split()[1] == second.split()[1]  # same query id
        assert status["pending"] == 1  # one pending entry, not two
        assert status["redelivered"] == 0


class TestEpochVisibility:
    def test_client_sees_epoch_in_cycle_header(self, store, config):
        async def body():
            daemon = BroadcastDaemon(
                store,
                config,
                DaemonConfig(shard=_identity(epoch=3)),
            )
            await daemon.start()
            try:
                client = AsyncTwoTierClient("//nitf", port=daemon.port)
                report = await client.run()
                assert report.satisfied
                return client.epoch, report.epoch_bumps
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        epoch, bumps = _run(body())
        assert epoch == 3
        assert bumps == 0  # a constant epoch is not a restart
