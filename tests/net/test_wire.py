"""Cycle wire codec: encode -> decode must round-trip byte-exactly.

The decoder's ``verify=True`` recomputes the program signature over the
*reconstructed* cycle and compares it to the header's -- so a passing
``feed`` chain here proves the wire stream carries everything the
signature covers: index bytes, offset lists, layout, schedule and
channel assignment.
"""

from __future__ import annotations

import pytest

from repro.broadcast.program import IndexScheme, program_signature
from repro.broadcast.server import DocumentStore
from repro.net.framing import FrameKind
from repro.net.wire import CycleDecoder, WireProtocolError, encode_cycle
from repro.sim.config import small_setup
from repro.sim.simulation import make_server
from repro.xmlkit import parse_document, serialize_document


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:40])


def _build_cycle(store, queries, **overrides):
    config = small_setup(**overrides)
    server = make_server(config, store)
    for i, query in enumerate(queries):
        try:
            server.submit(query, arrival_time=0)
        except ValueError:
            continue
    cycle = server.build_cycle()
    assert cycle is not None
    return cycle


def _round_trip(cycle, store, **decoder_kwargs):
    decoder = CycleDecoder(**decoder_kwargs)
    result = None
    for frame in encode_cycle(cycle, store):
        assert result is None, "no frames may follow CYCLE_END"
        result = decoder.feed(frame.kind, frame.payload)
    assert result is not None
    return result, decoder


class TestRoundTrip:
    def test_two_tier_single_channel(self, store, nitf_queries):
        cycle = _build_cycle(store, nitf_queries[:8])
        rebuilt, _ = _round_trip(cycle, store)
        assert program_signature(rebuilt) == program_signature(cycle)

    def test_one_tier(self, store, nitf_queries):
        cycle = _build_cycle(
            store, nitf_queries[:8], scheme=IndexScheme.ONE_TIER
        )
        rebuilt, _ = _round_trip(cycle, store)
        assert program_signature(rebuilt) == program_signature(cycle)

    def test_multichannel_k4(self, store, nitf_queries):
        cycle = _build_cycle(store, nitf_queries[:8], num_data_channels=4)
        rebuilt, _ = _round_trip(cycle, store)
        assert program_signature(rebuilt) == program_signature(cycle)
        assert rebuilt.num_data_channels == 4
        assert rebuilt.doc_channels == cycle.doc_channels

    def test_multiple_cycles_one_decoder(self, store, nitf_queries):
        """The decoder resets between cycles on one stream."""
        config = small_setup()
        server = make_server(config, store)
        for query in nitf_queries[:10]:
            try:
                server.submit(query, arrival_time=0)
            except ValueError:
                continue
        decoder = CycleDecoder()
        signatures = []
        for _ in range(3):
            cycle = server.build_cycle()
            if cycle is None:
                break
            for frame in encode_cycle(cycle, store):
                rebuilt = decoder.feed(frame.kind, frame.payload)
            assert program_signature(rebuilt) == program_signature(cycle)
            signatures.append(decoder.last_header["signature"])
        assert len(signatures) >= 2
        assert len(set(signatures)) == len(signatures)

    def test_kept_documents_parse_back(self, store, nitf_queries):
        """keep_documents retains the exact serialized XML payloads."""
        cycle = _build_cycle(store, nitf_queries[:8])
        _, decoder = _round_trip(cycle, store, keep_documents=True)
        assert set(decoder.documents) == set(cycle.doc_ids)
        for doc_id, body in decoder.documents.items():
            original = store.document(doc_id)
            parsed = parse_document(body.decode("utf-8"), doc_id=doc_id)
            assert serialize_document(parsed) == serialize_document(original)


class TestFrameMetadata:
    def test_air_bytes_cover_the_cycle(self, store, nitf_queries):
        """Per-frame on-air footprints sum to the cycle's total bytes."""
        cycle = _build_cycle(store, nitf_queries[:8])
        frames = encode_cycle(cycle, store)
        assert sum(f.air_bytes for f in frames) == cycle.total_bytes
        assert frames[0].kind is FrameKind.CYCLE_BEGIN
        assert frames[-1].kind is FrameKind.CYCLE_END
        assert max(f.end_offset for f in frames) == cycle.total_bytes

    def test_doc_frames_carry_channels(self, store, nitf_queries):
        cycle = _build_cycle(store, nitf_queries[:8], num_data_channels=2)
        doc_frames = [
            f for f in encode_cycle(cycle, store) if f.kind is FrameKind.DOC
        ]
        assert {f.channel for f in doc_frames} <= {0, 1}
        assert len(doc_frames) == len(cycle.doc_ids)


class TestTamperDetection:
    def test_signature_mismatch_raises(self, store, nitf_queries):
        cycle = _build_cycle(store, nitf_queries[:8])
        frames = encode_cycle(cycle, store)
        decoder = CycleDecoder()
        import json

        for frame in frames:
            payload = frame.payload
            if frame.kind is FrameKind.CYCLE_BEGIN:
                header = json.loads(payload.decode("utf-8"))
                header["signature"] = "0" * 64
                payload = json.dumps(header, sort_keys=True).encode("utf-8")
            if frame.kind is FrameKind.CYCLE_END:
                with pytest.raises(WireProtocolError, match="signature"):
                    decoder.feed(frame.kind, payload)
                return
            decoder.feed(frame.kind, payload)

    def test_missing_document_detected(self, store, nitf_queries):
        cycle = _build_cycle(store, nitf_queries[:8])
        frames = encode_cycle(cycle, store)
        doc_frames = [f for f in frames if f.kind is FrameKind.DOC]
        decoder = CycleDecoder()
        dropped = doc_frames[0]
        with pytest.raises(WireProtocolError):
            for frame in frames:
                if frame is dropped:
                    continue
                decoder.feed(frame.kind, frame.payload)

    def test_frames_outside_cycle_rejected(self):
        decoder = CycleDecoder()
        with pytest.raises(WireProtocolError, match="outside"):
            decoder.feed(FrameKind.INDEX, b"")
