"""Failure-domain behaviour, in one process and one event loop.

Router health-state transitions against dead ports, graceful
degradation (one shard down, the other streaming), splice idle
timeouts, the typed :class:`WireError` for corrupt downlinks, and the
full client resume path: tune -> submit -> worker "crash"
(``daemon.abort()``) -> successor daemon on the same journal under a
bumped epoch -> idempotent resubmit -> satisfied.  The multi-process
SIGKILL version of the same story is ``test_chaos_cluster.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.broadcast.partition import PartitionMap, ShardIdentity
from repro.broadcast.server import DocumentStore
from repro.net import (
    AsyncTwoTierClient,
    Backpressure,
    BroadcastDaemon,
    ClusterConfig,
    ClusterRouter,
    DaemonConfig,
    ShardHealth,
    WireError,
    WorkerAddress,
)
from repro.net.framing import FrameKind, encode_frame, encode_text, read_frame
from repro.sim.config import small_setup
from repro.tools.persist import QueryJournal
from repro.xpath.generator import generate_workload

NUM_SHARDS = 2
PARTITION_SEED = 5

BASE = small_setup(document_count=48, n_q=6, arrival_cycles=2)


@pytest.fixture(scope="module")
def full_docs():
    from repro.sim.simulation import build_collection

    return build_collection(BASE)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def _shard_query(full_docs, shard: int, seed: int = 33) -> str:
    pm = PartitionMap(NUM_SHARDS, seed=PARTITION_SEED)
    docs = [d for d in full_docs if pm.shard_of(d.doc_id) == shard]
    return str(generate_workload(docs, 1, seed=seed)[0])


async def _dead_port() -> int:
    """A port that was bound a moment ago and is now closed."""
    server = await asyncio.start_server(
        lambda r, w: None, "127.0.0.1", 0
    )
    port = server.sockets[0].getsockname()[1]
    server.close()
    await server.wait_closed()
    return port


async def _text_roundtrip(port: int, line: str) -> str:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_text(line))
        await writer.drain()
        kind, payload = await read_frame(reader)
        assert kind is FrameKind.TEXT
        return payload.decode("utf-8")
    finally:
        writer.close()


class TestRouterHealth:
    def test_dead_shard_goes_down_and_answers_retry_after(self):
        """Consecutive connect failures walk UP -> DEGRADED -> DOWN;
        a DOWN shard is rejected at the front door without a dial."""

        async def body():
            port = await _dead_port()
            router = ClusterRouter(
                PartitionMap(1, seed=0),
                [WorkerAddress(0, "127.0.0.1", port)],
                ClusterConfig(
                    connect_retries=0,
                    down_after=2,
                    down_probe_interval=60.0,
                ),
            )
            await router.start()
            try:
                first = await _text_roundtrip(router.port, "TUNE SHARD=0")
                assert first.startswith("RETRY_AFTER")
                assert router.health[0] is ShardHealth.DEGRADED
                second = await _text_roundtrip(router.port, "TUNE SHARD=0")
                assert second.startswith("RETRY_AFTER")
                assert router.health[0] is ShardHealth.DOWN
                dialed = router.stats.rejected_unavailable
                third = await _text_roundtrip(router.port, "TUNE SHARD=0")
                assert third.startswith("RETRY_AFTER")
                # rejected at the door: no connect attempt, just a count
                assert router.stats.rejected_unavailable == dialed + 1
                return router.aggregate_status
            finally:
                await router.stop()

        _run(body())

    def test_update_worker_restores_up(self, full_docs):
        """A restarted worker re-registered via update_worker routes
        again immediately (the supervisor's post-restart call)."""

        async def body():
            cfg = BASE.with_(
                num_shards=1, shard_index=0, partition_seed=PARTITION_SEED
            )
            daemon = BroadcastDaemon(
                DocumentStore(cfg.shard_documents(full_docs)),
                cfg,
                DaemonConfig(shard=cfg.shard_identity),
            )
            await daemon.start()
            router = ClusterRouter(
                PartitionMap(1, seed=PARTITION_SEED),
                [WorkerAddress(0, "127.0.0.1", await _dead_port())],
                ClusterConfig(
                    connect_retries=0, down_after=1, down_probe_interval=60.0
                ),
            )
            await router.start()
            try:
                down = await _text_roundtrip(router.port, "TUNE SHARD=0")
                assert down.startswith("RETRY_AFTER")
                assert router.health[0] is ShardHealth.DOWN

                router.update_worker(
                    0, WorkerAddress(0, "127.0.0.1", daemon.port)
                )
                assert router.health[0] is ShardHealth.UP
                report = await AsyncTwoTierClient(
                    "//nitf", port=router.port, shard=0
                ).run()
                return report
            finally:
                await router.stop()
                daemon.request_stop()
                await daemon.wait_done()

        report = _run(body())
        assert report.satisfied

    def test_degraded_cluster_serves_remaining_shards(self, full_docs):
        """Shard 0 dead: its sessions get RETRY_AFTER, shard 1 streams."""

        async def body():
            cfg = BASE.with_(
                num_shards=NUM_SHARDS,
                shard_index=1,
                partition_seed=PARTITION_SEED,
            )
            daemon = BroadcastDaemon(
                DocumentStore(cfg.shard_documents(full_docs)),
                cfg,
                DaemonConfig(shard=cfg.shard_identity),
            )
            await daemon.start()
            router = ClusterRouter(
                PartitionMap(NUM_SHARDS, seed=PARTITION_SEED),
                [
                    WorkerAddress(0, "127.0.0.1", await _dead_port()),
                    WorkerAddress(1, "127.0.0.1", daemon.port),
                ],
                ClusterConfig(connect_retries=0, down_after=1),
            )
            await router.start()
            try:
                with pytest.raises(Backpressure):
                    await AsyncTwoTierClient(
                        _shard_query(full_docs, 0), port=router.port, shard=0
                    ).run()
                report = await AsyncTwoTierClient(
                    _shard_query(full_docs, 1), port=router.port, shard=1
                ).run()
                status = await router.aggregate_status()
                return report, status
            finally:
                await router.stop()
                daemon.request_stop()
                await daemon.wait_done()

        report, status = _run(body())
        assert report.satisfied
        assert status["health"][0] == "down"
        assert status["health"][1] == "up"
        assert status["router"]["rejected_unavailable"] >= 1

    def test_splice_idle_timeout_reclaims_wedged_sessions(self, full_docs):
        """A tuned session moving no bytes is closed by the idle timer
        (the hung-worker case SIGSTOP chaos produces)."""

        async def body():
            cfg = BASE.with_(
                num_shards=1, shard_index=0, partition_seed=PARTITION_SEED
            )
            daemon = BroadcastDaemon(
                DocumentStore(cfg.shard_documents(full_docs)),
                cfg,
                DaemonConfig(autostart=False, shard=cfg.shard_identity),
            )
            await daemon.start()
            router = ClusterRouter(
                PartitionMap(1, seed=PARTITION_SEED),
                [WorkerAddress(0, "127.0.0.1", daemon.port)],
                ClusterConfig(splice_idle_timeout=0.2),
            )
            await router.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", router.port
                )
                writer.write(encode_text("TUNE SHARD=0"))
                await writer.drain()
                kind, payload = await read_frame(reader)
                assert payload.decode().startswith("TUNED")
                # idle both ways now; the router must hang up on us
                leftover = await asyncio.wait_for(reader.read(), timeout=10)
                assert leftover == b""
                writer.close()
                return router.stats.splices_idle_closed
            finally:
                await router.stop()
                daemon.request_stop()
                await daemon.wait_done()

        assert _run(body()) >= 1


class TestClientResume:
    def test_resume_across_worker_restart(self, full_docs, tmp_path):
        """The keystone resume path, in-process: abort() stands in for
        SIGKILL, a successor daemon on the same journal stands in for
        the supervisor's respawn."""

        async def body():
            cfg = BASE.with_(
                num_shards=1, shard_index=0, partition_seed=PARTITION_SEED
            )
            docs = DocumentStore(cfg.shard_documents(full_docs))
            journal_path = tmp_path / "worker-0.journal"
            first = BroadcastDaemon(
                docs,
                cfg,
                DaemonConfig(
                    autostart=False,  # downlink stays silent: the
                    # query is admitted but unsatisfied at crash time
                    shard=cfg.shard_identity,
                    journal=QueryJournal(journal_path),
                ),
            )
            await first.start()
            router = ClusterRouter(
                PartitionMap(1, seed=PARTITION_SEED),
                [WorkerAddress(0, "127.0.0.1", first.port)],
                ClusterConfig(connect_retries=0, down_probe_interval=0.05),
            )
            await router.start()
            second = None
            try:
                client = AsyncTwoTierClient(
                    "//nitf",
                    port=router.port,
                    shard=0,
                    client_key=21,
                    resume=True,
                    max_resumes=40,
                    resume_delay=0.05,
                )
                task = asyncio.ensure_future(client.run())

                deadline = asyncio.get_running_loop().time() + 30
                while not first.server.pending:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                await first.abort()  # SIGKILL, in-process

                import dataclasses

                identity = dataclasses.replace(cfg.shard_identity, epoch=1)
                second = BroadcastDaemon(
                    docs,
                    cfg,
                    DaemonConfig(
                        shard=identity, journal=QueryJournal(journal_path)
                    ),
                )
                await second.start()
                router.update_worker(
                    0, WorkerAddress(0, "127.0.0.1", second.port)
                )
                report = await asyncio.wait_for(task, timeout=45)
                return report, second.journal_replayed, client
            finally:
                await router.stop()
                if second is not None:
                    second.request_stop()
                    await second.wait_done()

        report, replayed, client = _run(body())
        assert report.satisfied
        assert report.resumes >= 1
        assert report.epoch_bumps == 1
        assert client.epoch == 1
        # the journal carried the admission across the crash; the
        # client's resubmit dedup-hit it instead of double-admitting
        assert replayed == 1


class TestWireError:
    def test_corrupt_cycle_header_raises_typed_error(self):
        """A decode failure surfaces as WireError with frame context,
        not a bare disconnect."""

        async def fake_worker(reader, writer):
            while True:
                kind, payload = await read_frame(reader)
                line = payload.decode()
                if line.startswith("TUNE"):
                    banner = json.dumps(
                        {
                            "num_channels": 1,
                            "ack_required": False,
                            "checksum_bytes": 0,
                        }
                    )
                    writer.write(encode_text(f"TUNED {banner}"))
                elif line.startswith("SUBMIT"):
                    writer.write(encode_text("ACK 0 0"))
                    writer.write(
                        encode_frame(FrameKind.CYCLE_BEGIN, b"not json")
                    )
                await writer.drain()

        async def body():
            server = await asyncio.start_server(
                fake_worker, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            try:
                client = AsyncTwoTierClient("//nitf", port=port)
                with pytest.raises(WireError) as excinfo:
                    await client.run()
                return excinfo.value
            finally:
                server.close()
                await server.wait_closed()

        error = _run(body())
        assert error.frame_kind == "CYCLE_BEGIN"
        assert error.phase == "decode"
        assert "malformed cycle header" in str(error)
