"""Keystone cluster differential: sharding changes *where*, never *what*.

Two single-shard reference runs (one independent simulator + daemon per
partition slice) and one 2-shard cluster behind a proxy-mode front door
serve the same per-shard query plans.  Every per-query byte count and
every per-shard cycle signature must be identical: routing through the
cluster tier is invisible in the broadcast itself.

The reference metrics come from the *unchanged* ``Simulation`` over
each shard's sub-collection, so this test transitively anchors the
cluster to the simulator through the same equality
``tests/net/test_parity.py`` pins for the single daemon.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.broadcast.partition import PartitionMap
from repro.broadcast.program import program_signature
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.net.cluster import ClusterConfig, ClusterRouter, WorkerAddress
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation, build_collection

NUM_SHARDS = 2
PARTITION_SEED = 5


class RecordingSimulation(Simulation):
    """Capture each emitted cycle's program signature, in order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.signatures = []

    def _record_cycle(self, cycle):
        self.signatures.append(program_signature(cycle))
        return super()._record_cycle(cycle)


@pytest.fixture(scope="module")
def base_config():
    return small_setup(document_count=48, n_q=6, arrival_cycles=2)


@pytest.fixture(scope="module")
def shard_configs(base_config):
    """One config per shard; distinct query seeds so the shards serve
    genuinely different workloads, not mirrored ones."""
    return [
        base_config.with_(
            num_shards=NUM_SHARDS,
            shard_index=i,
            partition_seed=PARTITION_SEED,
            query_seed=11 + i,
        )
        for i in range(NUM_SHARDS)
    ]


@pytest.fixture(scope="module")
def shard_docs(shard_configs):
    """Each shard's sub-collection (derived from the same full seed)."""
    return [build_collection(config) for config in shard_configs]


@pytest.fixture(scope="module")
def references(shard_configs, shard_docs):
    """Per-shard reference runs of the unchanged simulator."""
    result = []
    for config, docs in zip(shard_configs, shard_docs):
        sim = RecordingSimulation(config, documents=docs)
        sim.run()
        plans = [
            (s.plan.arrival_time, str(s.plan.query)) for s in sim.sessions
        ]
        expected = [
            (
                client.metrics.access_bytes,
                client.metrics.tuning_bytes,
                client.metrics.index_lookup_bytes,
                client.metrics.cycles_listened,
            )
            for session in sim.sessions
            for client in session.clients
            if client.protocol_name == "two-tier"
        ]
        assert len(expected) == len(plans)
        result.append((plans, expected, sim.signatures))
    return result


async def _run_cluster(shard_configs, shard_docs, references):
    """2 sharded daemons behind a proxy front door, scripted replay.

    Returns per-shard (reports, daemon) keyed like the references.
    """
    partition = PartitionMap(NUM_SHARDS, seed=PARTITION_SEED)
    daemons = []
    for config, docs in zip(shard_configs, shard_docs):
        daemon = BroadcastDaemon(
            DocumentStore(docs, config.size_model),
            config,
            DaemonConfig(autostart=False, shard=config.shard_identity),
        )
        await daemon.start()
        daemons.append(daemon)
    router = ClusterRouter(
        partition,
        [WorkerAddress(i, "127.0.0.1", d.port) for i, d in enumerate(daemons)],
        ClusterConfig(),
    )
    await router.start()

    # Shard-pinned clients enter through the front door only; the proxy
    # splice must carry the whole session (uplink replies + downlink
    # cycle stream) transparently.
    by_shard = []
    for shard, (plans, _, _) in enumerate(references):
        by_shard.append(
            [
                AsyncTwoTierClient(
                    query,
                    port=router.port,
                    arrival_time=arrival,
                    shard=shard,
                )
                for arrival, query in plans
            ]
        )
    for clients in by_shard:
        for client in clients:
            await client.connect()
            await client.tune()
    # Submit in plan order per shard: query-id assignment at each worker
    # must match its reference simulator exactly.
    for clients in by_shard:
        for client in clients:
            await client.submit()
    for daemon in daemons:
        daemon.start_broadcast()
    reports = [
        await asyncio.gather(*(c.run_session() for c in clients))
        for clients in by_shard
    ]
    cluster_banners = [
        [client.cluster for client in clients] for clients in by_shard
    ]
    for clients in by_shard:
        for client in clients:
            await client.close()
    await router.stop()
    for daemon in daemons:
        daemon.request_stop()
        await daemon.wait_done()
    return reports, daemons, router, cluster_banners


@pytest.fixture(scope="module")
def cluster_run(shard_configs, shard_docs, references):
    return asyncio.run(
        asyncio.wait_for(
            _run_cluster(shard_configs, shard_docs, references), timeout=300
        )
    )


class TestClusterParity:
    def test_per_shard_metrics_equal_reference(self, references, cluster_run):
        reports, _, _, _ = cluster_run
        for shard, (_, expected, _) in enumerate(references):
            for i, (report, want) in enumerate(
                zip(reports[shard], expected)
            ):
                assert report.satisfied, f"shard {shard} client {i}"
                got = (
                    report.metrics.access_bytes,
                    report.metrics.tuning_bytes,
                    report.metrics.index_lookup_bytes,
                    report.metrics.cycles_listened,
                )
                assert got == want, (
                    f"shard {shard} client {i}: cluster {got} != "
                    f"reference {want}"
                )

    def test_per_shard_cycle_signatures_identical(
        self, references, cluster_run
    ):
        """Byte-identity: every cycle a client decoded through the
        cluster is its shard's reference cycle, signature-for-signature
        from the start of the run (clients tune before cycle 1)."""
        reports, daemons, _, _ = cluster_run
        for shard, (_, _, sim_signatures) in enumerate(references):
            assert daemons[shard].cycles_streamed == len(sim_signatures)
            for report in reports[shard]:
                assert report.signatures, f"shard {shard}: no cycles decoded"
                assert (
                    report.signatures
                    == sim_signatures[: len(report.signatures)]
                )

    def test_cluster_header_advertised_and_verified(self, cluster_run):
        """Every session saw the partition contract (TUNED banner /
        CYCLE_BEGIN header) and the client's placement verification ran
        against it."""
        _, _, _, cluster_banners = cluster_run
        partition = PartitionMap(NUM_SHARDS, seed=PARTITION_SEED)
        for shard, banners in enumerate(cluster_banners):
            assert banners  # both shards actually served sessions
            for banner in banners:
                assert banner is not None
                assert banner["shard"] == shard
                assert banner["num_shards"] == NUM_SHARDS
                assert banner["map"] == partition.describe()

    def test_router_saw_every_session(self, references, cluster_run):
        _, _, router, _ = cluster_run
        total = sum(len(plans) for plans, _, _ in references)
        assert router.stats.proxied_total == total
        assert router.stats.moved_total == 0
        for shard, (plans, _, _) in enumerate(references):
            assert router.stats.routed_by_shard[shard] == len(plans)
