"""Downlink hot path: share-once encoding, slow readers, decode reuse.

Three properties of the rewritten streaming path are pinned here:

* frame encoding happens once per cycle, independent of how many
  subscribers are tuned (the same bytes objects fan out to everyone);
* a stalled or slow reader is evicted above ``max_buffered_bytes`` and
  never blocks the fan-out to the other subscribers (the drain gate);
* :class:`~repro.net.wire.CycleDecoder` instances in one process share
  decoded cycles keyed by the exact frame bytes, so N co-located
  clients pay for one decode, and any byte difference misses the cache.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.net.daemon import _Connection
from repro.net.framing import FrameKind, encode_text, read_frame
from repro.net.wire import CycleDecoder, WireProtocolError, encode_cycle
from repro.sim.config import small_setup
from repro.sim.simulation import make_server


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:30])


@pytest.fixture()
def config():
    return small_setup(document_count=30)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _with_daemon(store, config, net, body):
    daemon = BroadcastDaemon(store, config, net)
    await daemon.start()
    try:
        return await body(daemon)
    finally:
        daemon.request_stop()
        await daemon.wait_done()


# ----------------------------------------------------------------------
# Share-once frame encoding
# ----------------------------------------------------------------------


class TestEncodeOnce:
    def _measure(self, store, config, n_clients: int):
        """Stream one deduped workload to *n_clients* subscribers and
        return (frames_encoded, frames_sent, cycles)."""

        async def body(daemon):
            clients = [
                # Same KEY: the uplink dedups to ONE pending query, so
                # every run broadcasts the identical cycle sequence and
                # only the audience size varies.
                AsyncTwoTierClient(
                    "//nitf", port=daemon.port, arrival_time=0, client_key=7
                )
                for _ in range(n_clients)
            ]
            for c in clients:
                await c.connect()
                await c.tune()
            for c in clients:
                await c.submit()
            daemon.start_broadcast()
            reports = await asyncio.gather(*(c.run_session() for c in clients))
            for c in clients:
                await c.close()
            assert all(r.satisfied for r in reports)
            return (
                daemon.stats.frames_encoded,
                daemon.stats.frames_sent,
                daemon.stats.cycles_streamed,
            )

        net = DaemonConfig(autostart=False)
        return _run(_with_daemon(store, config, net, body))

    def test_encode_count_independent_of_connection_count(self, store, config):
        solo = self._measure(store, config, n_clients=1)
        crowd = self._measure(store, config, n_clients=4)
        assert solo[2] == crowd[2], "audience size changed the cycle count"
        assert solo[0] == crowd[0], (
            f"frames_encoded grew with subscribers: {solo[0]} -> {crowd[0]}"
        )
        # Every frame that went on air was encoded exactly once.
        assert crowd[0] == crowd[1]
        assert crowd[0] > 0


# ----------------------------------------------------------------------
# Slow readers: drain gating and eviction
# ----------------------------------------------------------------------


class _ScriptTransport:
    """Transport double with a scripted write-buffer size."""

    def __init__(self, buffered: int) -> None:
        self.buffered = buffered
        self.limits = None

    def get_write_buffer_size(self) -> int:
        return self.buffered

    def set_write_buffer_limits(self, high=None, low=None) -> None:
        self.limits = (high, low)


class _ScriptWriter:
    """StreamWriter double: records writes, counts (or stalls) drains."""

    def __init__(self, buffered: int = 0, stall: bool = False) -> None:
        self.transport = _ScriptTransport(buffered)
        self.wrote = []
        self.drains = 0
        self.stall = stall

    def write(self, blob: bytes) -> None:
        self.wrote.append(blob)

    async def drain(self) -> None:
        self.drains += 1
        if self.stall:
            await asyncio.Event().wait()  # a reader that never drains

    def close(self) -> None:
        pass


class TestSlowReader:
    def _daemon(self, store, config, **net_kwargs):
        return BroadcastDaemon(
            store, config, DaemonConfig(autostart=False, **net_kwargs)
        )

    def test_fire_and_forget_below_high_water(self, store, config):
        async def body():
            daemon = self._daemon(store, config)
            writer = _ScriptWriter(buffered=daemon.net.drain_high_water - 1)
            conn = _Connection(None, writer, tuned=True)
            await daemon._send(conn, b"frame")
            return writer, conn, daemon

        writer, conn, daemon = _run(body())
        assert writer.wrote == [b"frame"]
        assert writer.drains == 0, "sends below high water must not drain"
        assert not conn.closed
        assert daemon.stats.slow_consumers_evicted == 0

    def test_drains_above_high_water(self, store, config):
        async def body():
            daemon = self._daemon(store, config)
            writer = _ScriptWriter(buffered=daemon.net.drain_high_water + 1)
            conn = _Connection(None, writer, tuned=True)
            await daemon._send(conn, b"frame")
            return writer, conn

        writer, conn = _run(body())
        assert writer.drains == 1
        assert not conn.closed

    def test_evicts_above_buffer_cap_without_draining(self, store, config):
        async def body():
            daemon = self._daemon(store, config)
            # Stalled: a drain here would never return -- eviction must
            # happen first, without ever touching drain.
            writer = _ScriptWriter(
                buffered=daemon.net.max_buffered_bytes + 1, stall=True
            )
            conn = _Connection(None, writer, tuned=True)
            daemon._connections.append(conn)
            await asyncio.wait_for(daemon._send(conn, b"frame"), timeout=5)
            return writer, conn, daemon

        writer, conn, daemon = _run(body())
        assert conn.closed, "over-cap subscriber must be evicted"
        assert writer.drains == 0, "eviction must not wait on the stalled reader"
        assert daemon.stats.slow_consumers_evicted == 1
        assert conn not in daemon._connections

    def test_stalled_reader_does_not_block_fanout(self, store, config):
        """The satellite bug: one stalled reader used to hold every
        other subscriber's frame hostage inside the per-frame gather."""

        async def body():
            daemon = self._daemon(store, config)
            stalled = _Connection(
                None,
                _ScriptWriter(
                    buffered=daemon.net.max_buffered_bytes + 1, stall=True
                ),
                tuned=True,
            )
            healthy = _Connection(None, _ScriptWriter(buffered=0), tuned=True)
            await asyncio.wait_for(
                asyncio.gather(
                    daemon._send(stalled, b"frame"),
                    daemon._send(healthy, b"frame"),
                ),
                timeout=5,
            )
            return stalled, healthy

        stalled, healthy = _run(body())
        assert stalled.closed
        assert not healthy.closed
        assert healthy.writer.wrote == [b"frame"]

    def test_metrics_expose_fastpath_counters(self, store, config):
        daemon = BroadcastDaemon(store, config, DaemonConfig(autostart=False))
        names = {family.name for family in daemon._stat_families()}
        assert "net.frames_encoded" in names
        assert "net.slow_consumers_evicted" in names

    def test_zombie_subscriber_leaves_others_live(self, store, config):
        """End to end: a connection that TUNEs and then never reads a
        byte must not keep real clients from completing."""

        async def body(daemon):
            zombie_reader, zombie_writer = await asyncio.open_connection(
                "127.0.0.1", daemon.port
            )
            zombie_writer.write(encode_text("TUNE"))
            await zombie_writer.drain()
            # Never read: the TUNED reply and every broadcast frame pile
            # up in the daemon's buffers for this connection.
            clients = [
                AsyncTwoTierClient(q, port=daemon.port, arrival_time=0)
                for q in ("//nitf", "//body")
            ]
            for c in clients:
                await c.connect()
                await c.tune()
            for c in clients:
                await c.submit()
            daemon.start_broadcast()
            reports = await asyncio.gather(*(c.run_session() for c in clients))
            for c in clients:
                await c.close()
            zombie_writer.close()
            return reports

        net = DaemonConfig(autostart=False)
        reports = _run(_with_daemon(store, config, net, body))
        assert all(r.satisfied for r in reports)
        assert all(r.cycles_verified >= 1 for r in reports)


# ----------------------------------------------------------------------
# Shared cycle decoding
# ----------------------------------------------------------------------


class TestSharedDecode:
    def _frames(self, store, queries):
        config = small_setup(document_count=30)
        server = make_server(config, store)
        for query in queries:
            try:
                server.submit(query, arrival_time=0)
            except ValueError:
                continue
        cycle = server.build_cycle()
        assert cycle is not None
        return [
            (frame.kind, frame.payload) for frame in encode_cycle(cycle, store)
        ]

    def test_second_decoder_reuses_first_decode(self, store, nitf_queries):
        frames = self._frames(store, nitf_queries[:6])

        def decode(**kwargs):
            decoder = CycleDecoder(**kwargs)
            result = None
            for kind, payload in frames:
                result = decoder.feed(kind, payload)
            assert result is not None
            return result

        first = decode()
        second = decode()
        assert second is first, "same frame bytes must share one decode"
        # Opting out decodes from scratch.
        assert decode(share=False) is not first

    def test_byte_difference_misses_the_cache(self, store, nitf_queries):
        frames = self._frames(store, nitf_queries[:6])
        decoder = CycleDecoder()
        for kind, payload in frames:
            decoder.feed(kind, payload)
        # Tamper with one byte of the INDEX frame: the digest changes,
        # the cache misses, and the fresh decode fails loudly (a decode
        # error or a signature mismatch, depending on which byte flips)
        # instead of serving the cached clean cycle.
        tampered = CycleDecoder()
        with pytest.raises((WireProtocolError, ValueError)):
            for kind, payload in frames:
                if kind is FrameKind.INDEX:
                    payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
                tampered.feed(kind, payload)
