"""The pure half of the chaos harness: schedules and safety audits.

No processes are forked here -- determinism of the fault schedule and
the journal accounting invariants are plain-data properties, which is
exactly why :func:`build_chaos_schedule` is separate from
:class:`ChaosController` (the live half runs under ``-m cluster`` in
``test_chaos_cluster.py``).
"""

from __future__ import annotations

import pytest

from repro.net.chaos import (
    ChaosAction,
    ChaosSchedule,
    ChaosViolation,
    assert_recovery,
    audit_journal,
    build_chaos_schedule,
)
from repro.tools.persist import QueryJournal


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = build_chaos_schedule(4, 30.0, seed=11, extra_actions=6)
        b = build_chaos_schedule(4, 30.0, seed=11, extra_actions=6)
        assert a == b

    def test_different_seed_different_schedule(self):
        a = build_chaos_schedule(4, 30.0, seed=11, extra_actions=6)
        b = build_chaos_schedule(4, 30.0, seed=12, extra_actions=6)
        assert a != b

    def test_every_shard_is_killed_at_least_once(self):
        schedule = build_chaos_schedule(5, 20.0, seed=3)
        for shard in range(5):
            kills = [
                a for a in schedule.for_shard(shard) if a.kind == "kill"
            ]
            assert len(kills) >= 1

    def test_kills_land_in_the_middle_band(self):
        """Early enough to recover under load, late enough to have
        admitted work to lose."""
        schedule = build_chaos_schedule(3, 10.0, seed=7, kills_per_shard=2)
        for action in schedule.actions:
            assert 0.2 * 10.0 <= action.at_s <= 0.8 * 10.0

    def test_actions_sorted_by_time(self):
        schedule = build_chaos_schedule(4, 30.0, seed=9, extra_actions=8)
        times = [a.at_s for a in schedule.actions]
        assert times == sorted(times)

    def test_describe_counts_kinds(self):
        schedule = build_chaos_schedule(2, 10.0, seed=1, extra_actions=3)
        described = schedule.describe()
        assert described["kinds"]["kill"] == 2
        assert sum(described["kinds"].values()) == len(schedule.actions)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            build_chaos_schedule(0, 10.0)
        with pytest.raises(ValueError):
            build_chaos_schedule(2, 0.0)
        with pytest.raises(ValueError):
            build_chaos_schedule(2, 10.0, kills_per_shard=0)
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosAction(at_s=1.0, kind="meteor", shard=0)
        with pytest.raises(ValueError):
            ChaosAction(at_s=-1.0, kind="kill", shard=0)

    def test_schedule_is_frozen(self):
        schedule = ChaosSchedule(seed=1, horizon_s=5.0)
        with pytest.raises(Exception):
            schedule.seed = 2  # type: ignore[misc]


class TestSafetyAudit:
    def _write(self, path, records):
        journal = QueryJournal(path)
        journal.open()
        for record in records:
            kind, args = record[0], record[1:]
            getattr(journal, f"record_{kind}")(*args[:-1], **args[-1])
        journal.close()
        return path

    def test_clean_journal_passes(self, tmp_path):
        path = self._write(
            tmp_path / "a.journal",
            [
                ("admit", 1, "//a", 0, {"client_key": 5}),
                ("admit", 2, "//b", 10, {"client_key": 6}),
                ("done", 1, {}),
                ("done", 2, {}),
            ],
        )
        audits = assert_recovery([path])
        assert audits[0]["outstanding"] == 0
        assert audits[0]["duplicate_admits"] == []

    def test_lost_query_raises(self, tmp_path):
        path = self._write(
            tmp_path / "a.journal",
            [
                ("admit", 1, "//a", 0, {"client_key": 5}),
                ("admit", 2, "//b", 10, {"client_key": 6}),
                ("done", 1, {}),
            ],
        )
        with pytest.raises(ChaosViolation, match="never\\s+satisfied"):
            assert_recovery([path])

    def test_duplicate_admit_within_epoch_raises(self, tmp_path):
        path = self._write(
            tmp_path / "a.journal",
            [
                ("admit", 1, "//a", 0, {"client_key": 5}),
                ("admit", 2, "//a", 0, {"client_key": 5}),
                ("done", 1, {}),
                ("done", 2, {}),
            ],
        )
        with pytest.raises(ChaosViolation, match="duplicate admissions"):
            assert_recovery([path])

    def test_readmission_across_epochs_is_not_a_duplicate(self, tmp_path):
        """Crash resume legitimately re-admits the same (key, query)
        under the next epoch -- that must not trip the audit."""
        path = self._write(
            tmp_path / "a.journal",
            [
                ("admit", 1, "//a", 0, {"client_key": 5}),
                ("admit", 7, "//a", 0, {"client_key": 5, "epoch": 1}),
                ("done", 1, {}),
                ("done", 7, {}),
            ],
        )
        audits = assert_recovery([path])
        assert audits[0]["duplicate_admits"] == []

    def test_keyless_admits_never_count_as_duplicates(self, tmp_path):
        """Two anonymous clients may submit the same query text."""
        path = self._write(
            tmp_path / "a.journal",
            [
                ("admit", 1, "//a", 0, {}),
                ("admit", 2, "//a", 0, {}),
                ("done", 1, {}),
                ("done", 2, {}),
            ],
        )
        assert assert_recovery([path])[0]["duplicate_admits"] == []

    def test_audit_reports_epoch_sections(self, tmp_path):
        journal = QueryJournal(tmp_path / "a.journal")
        journal.open()
        journal.record_admit(1, "//a", 0, client_key=5)
        journal.close()
        compacting = QueryJournal(journal.path)
        compacting.compact(
            journal.load().outstanding, epoch=1
        )
        compacting.open()
        compacting.record_admit(9, "//a", 0, client_key=5, epoch=1)
        compacting.record_done(9)
        compacting.close()
        audit = audit_journal(journal.path)
        assert audit["resumes"] == 1
        assert audit["outstanding"] == 0

    def test_missing_journal_audits_empty(self, tmp_path):
        audit = audit_journal(tmp_path / "never.journal")
        assert audit["admits"] == 0 and audit["outstanding"] == 0
