"""Property tests of the cluster partition map.

The :class:`~repro.broadcast.partition.PartitionMap` is the placement
contract between router, workers and clients, so its invariants are
checked property-style:

* every document routes to exactly one shard, and ``partition()`` is a
  disjoint cover of the input;
* routing is *stable*: a document's shard never depends on what other
  documents exist (add/remove anything, nothing else moves);
* re-sharding N -> N is the identity, and the contiguous-slot-range
  construction makes W-way partitions **nest** inside N-way ones
  whenever W divides N;
* the wire description round-trips exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.broadcast.partition import (
    SLOT_COUNT,
    PartitionMap,
    ShardIdentity,
)

doc_ids = st.integers(min_value=0, max_value=10_000)
seeds = st.integers(min_value=0, max_value=2**31)
shard_counts = st.integers(min_value=1, max_value=16)


class TestRoutingInvariants:
    @given(doc_id=doc_ids, num_shards=shard_counts, seed=seeds)
    def test_every_document_routes_to_exactly_one_shard(
        self, doc_id, num_shards, seed
    ):
        pm = PartitionMap(num_shards, seed=seed)
        shard = pm.shard_of(doc_id)
        assert 0 <= shard < num_shards
        owners = [
            i for i in range(num_shards) if ShardIdentity(i, pm).owns(doc_id)
        ]
        assert owners == [shard]

    @given(
        ids=st.lists(doc_ids, unique=True, max_size=60),
        num_shards=shard_counts,
        seed=seeds,
    )
    def test_partition_is_a_disjoint_cover(self, ids, num_shards, seed):
        pm = PartitionMap(num_shards, seed=seed)
        parts = pm.partition(ids)
        assert len(parts) == num_shards
        flattened = [d for part in parts for d in part]
        assert sorted(flattened) == sorted(ids)  # cover, no duplicates
        for shard, part in enumerate(parts):
            assert all(pm.shard_of(d) == shard for d in part)

    @given(
        ids=st.lists(doc_ids, unique=True, min_size=1, max_size=40),
        extra=doc_ids,
        num_shards=shard_counts,
        seed=seeds,
    )
    def test_routing_is_stable_under_add_and_remove(
        self, ids, extra, num_shards, seed
    ):
        """A document's placement is a pure function of (id, map): other
        documents appearing or disappearing never moves it."""
        pm = PartitionMap(num_shards, seed=seed)
        before = {d: pm.shard_of(d) for d in ids}
        # add one, drop one -- placements of the survivors are unchanged
        survivors = ids[1:] + [extra]
        after = {d: pm.shard_of(d) for d in survivors}
        for d in survivors:
            if d in before:
                assert after[d] == before[d]


class TestResharding:
    @given(
        ids=st.lists(doc_ids, unique=True, max_size=60),
        num_shards=shard_counts,
        seed=seeds,
    )
    def test_resharding_to_same_count_is_identity(self, ids, num_shards, seed):
        a = PartitionMap(num_shards, seed=seed)
        b = PartitionMap(num_shards, seed=seed)
        assert a.partition(ids) == b.partition(ids)
        assert a.digest() == b.digest()

    @given(
        doc_id=doc_ids,
        seed=seeds,
        wide=st.sampled_from([2, 4, 8, 16]),
        factor=st.sampled_from([1, 2, 4]),
    )
    def test_partitions_nest_when_counts_divide(
        self, doc_id, seed, wide, factor
    ):
        """W | N => the N-way shard collapses onto the W-way shard by
        ``n_shard * W // N`` -- the property the load plan and the scale
        bench lean on to replay one plan at several cluster sizes."""
        narrow = wide // factor if wide // factor >= 1 else 1
        if wide % narrow != 0:
            return
        pm_wide = PartitionMap(wide, seed=seed)
        pm_narrow = PartitionMap(narrow, seed=seed)
        assert (
            pm_narrow.shard_of(doc_id)
            == pm_wide.shard_of(doc_id) * narrow // wide
        )


class TestWireContract:
    @given(num_shards=shard_counts, seed=seeds)
    def test_description_round_trips(self, num_shards, seed):
        pm = PartitionMap(num_shards, seed=seed)
        clone = PartitionMap.from_description(pm.describe())
        assert clone == pm
        assert clone.digest() == pm.digest()

    def test_version_mismatch_rejected(self):
        payload = PartitionMap(2).describe()
        payload["version"] = 999
        with pytest.raises(ValueError):
            PartitionMap.from_description(payload)

    @given(text=st.text(min_size=1, max_size=80), num_shards=shard_counts)
    def test_query_fallback_routing_in_range_and_deterministic(
        self, text, num_shards
    ):
        pm = PartitionMap(num_shards)
        shard = pm.shard_for_query(text)
        assert 0 <= shard < num_shards
        assert pm.shard_for_query(text) == shard

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionMap(0)
        with pytest.raises(ValueError):
            PartitionMap(SLOT_COUNT + 1)
        with pytest.raises(ValueError):
            ShardIdentity(2, PartitionMap(2))
