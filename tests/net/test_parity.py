"""Keystone differential test: the live daemon equals the simulator.

N scripted async clients replay a simulator arrival schedule against a
real daemon over TCP.  Every per-query byte count (access, tuning,
index look-up, cycles listened) must equal ``Simulation``'s for the
same seed, and every streamed cycle's decoded program signature must
match the simulator's cycle-for-cycle -- the broadcast on the wire is
byte-for-byte the broadcast in the model.  Checked at K=1 and K=4.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.broadcast.program import program_signature
from repro.broadcast.server import DocumentStore
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation, build_collection


class RecordingSimulation(Simulation):
    """Capture each emitted cycle's program signature, in order."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.signatures = []

    def _record_cycle(self, cycle):
        self.signatures.append(program_signature(cycle))
        return super()._record_cycle(cycle)


def _simulate(config, documents, protocol_name):
    """Run the reference simulation; return (plans, per-session metrics,
    cycle signatures).  Plans are (arrival_time, query) in admission
    order -- the replay must submit in exactly this order so the daemon
    assigns the same query ids."""
    sim = RecordingSimulation(config, documents=documents)
    sim.run()
    plans = [(s.plan.arrival_time, str(s.plan.query)) for s in sim.sessions]
    expected = []
    for session in sim.sessions:
        for client in session.clients:
            if client.protocol_name == protocol_name:
                expected.append(
                    (
                        client.metrics.access_bytes,
                        client.metrics.tuning_bytes,
                        client.metrics.index_lookup_bytes,
                        client.metrics.cycles_listened,
                    )
                )
    assert len(expected) == len(plans)
    return plans, expected, sim.signatures


async def _replay(store, config, plans, net=None, trace=False):
    """Drive a live daemon with scripted clients; returns their reports
    in admission order."""
    daemon = BroadcastDaemon(
        store, config, net or DaemonConfig(autostart=False)
    )
    await daemon.start()
    clients = [
        AsyncTwoTierClient(
            query, port=daemon.port, arrival_time=arrival, trace=trace
        )
        for arrival, query in plans
    ]
    # Everyone tunes before the first cycle airs, then submits in plan
    # order (sequentially: query-id assignment must match the simulator).
    for client in clients:
        await client.connect()
        await client.tune()
    for client in clients:
        await client.submit()
    daemon.start_broadcast()
    reports = await asyncio.gather(*(c.run_session() for c in clients))
    for client in clients:
        await client.close()
    daemon.request_stop()
    await daemon.wait_done()
    return reports, daemon


def _check_parity(config, documents, protocol_name, net=None, trace=False):
    store = DocumentStore(documents, config.size_model)
    plans, expected, sim_signatures = _simulate(
        config, documents, protocol_name
    )
    reports, daemon = asyncio.run(
        asyncio.wait_for(
            _replay(store, config, plans, net=net, trace=trace), timeout=300
        )
    )
    assert daemon.cycles_streamed == len(sim_signatures)
    for i, (report, want) in enumerate(zip(reports, expected)):
        assert report.protocol == protocol_name
        assert report.satisfied, f"client {i} not satisfied"
        got = (
            report.metrics.access_bytes,
            report.metrics.tuning_bytes,
            report.metrics.index_lookup_bytes,
            report.metrics.cycles_listened,
        )
        assert got == want, f"client {i}: daemon {got} != simulator {want}"
        # Every cycle this client decoded is the simulator's cycle,
        # byte-for-byte (the signature covers index bytes, offsets,
        # layout, schedule and channel assignment).
        for signature in report.signatures:
            assert signature in sim_signatures


@pytest.fixture(scope="module")
def parity_config():
    return small_setup(document_count=40, n_q=8, arrival_cycles=2)


@pytest.fixture(scope="module")
def parity_docs(parity_config):
    return build_collection(parity_config)


class TestDaemonSimulatorParity:
    def test_single_channel(self, parity_config, parity_docs):
        _check_parity(parity_config, parity_docs, "two-tier")

    def test_four_data_channels(self, parity_config, parity_docs):
        config = parity_config.with_(num_data_channels=4)
        _check_parity(config, parity_docs, "two-tier-multi")


class TestTelemetryParity:
    """The telemetry plane must never perturb what goes on air.

    With the metrics endpoint live, the flight recorder armed, the event
    log capturing at debug level AND every client tracing, the per-query
    byte accounting and each cycle's program signature still equal the
    simulator's.  (Traces ride the CYCLE_END trailer, which the
    signature and byte accounting exclude by design.)
    """

    def test_full_telemetry_is_invisible_on_air(
        self, parity_config, parity_docs
    ):
        from repro.net import DaemonConfig
        from repro.obs.telemetry import (
            EventLog,
            FlightRecorder,
            TelemetryConfig,
        )

        telemetry = TelemetryConfig(
            metrics_port=0,
            events=EventLog(sink=None, level="debug"),
            flight=FlightRecorder(),
        )
        net = DaemonConfig(autostart=False, telemetry=telemetry)
        _check_parity(
            parity_config, parity_docs, "two-tier", net=net, trace=True
        )
