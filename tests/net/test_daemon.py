"""Live daemon behaviour: admission, backpressure, pacing, drain."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.broadcast.server import DocumentStore
from repro.net import (
    AsyncTwoTierClient,
    BroadcastDaemon,
    DaemonConfig,
    ManualClock,
    TokenBucket,
)
from repro.net.client import Backpressure
from repro.net.framing import FrameKind, encode_text, read_frame
from repro.sim.config import small_setup


@pytest.fixture(scope="module")
def store(nitf_docs):
    return DocumentStore(nitf_docs[:30])


@pytest.fixture()
def config():
    return small_setup(document_count=30)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


async def _with_daemon(store, config, net, body):
    daemon = BroadcastDaemon(store, config, net)
    await daemon.start()
    try:
        return await body(daemon)
    finally:
        daemon.request_stop()
        await daemon.wait_done()


async def _raw_command(port: int, line: str) -> str:
    """One TEXT command on a fresh, untuned connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_text(line))
        await writer.drain()
        kind, payload = await read_frame(reader)
        assert kind is FrameKind.TEXT
        return payload.decode("utf-8")
    finally:
        writer.close()


class TestUplink:
    def test_submit_ack_and_status(self, store, config):
        async def body(daemon):
            reply = await _raw_command(daemon.port, "SUBMIT AT=0 //nitf")
            word, qid, arrival = reply.split()
            assert word == "ACK" and arrival == "0"
            status = json.loads(
                (await _raw_command(daemon.port, "STATUS")).split(" ", 1)[1]
            )
            assert status["admitted"] == 1
            assert status["pending"] >= 1
            return int(qid)

        # autostart=False keeps the query pending so STATUS is stable
        net = DaemonConfig(autostart=False)
        assert _run(_with_daemon(store, config, net, body)) == 0

    def test_bad_query_is_err_not_fatal(self, store, config):
        async def body(daemon):
            bad = await _raw_command(daemon.port, "SUBMIT //no(t)valid")
            empty = await _raw_command(daemon.port, "SUBMIT")
            unknown = await _raw_command(daemon.port, "FROB 1")
            return bad, empty, unknown

        bad, empty, unknown = _run(
            _with_daemon(store, config, DaemonConfig(autostart=False), body)
        )
        assert bad.startswith("ERR")
        assert empty.startswith("ERR")
        assert unknown.startswith("ERR unknown command")

    def test_backpressure_retry_after(self, store, config):
        async def body(daemon):
            first = await _raw_command(daemon.port, "SUBMIT AT=0 //nitf")
            second = await _raw_command(daemon.port, "SUBMIT AT=0 //body")
            return first, second

        net = DaemonConfig(autostart=False, max_pending=1)
        first, second = _run(_with_daemon(store, config, net, body))
        assert first.startswith("ACK")
        assert second.startswith("RETRY_AFTER")

    def test_backpressure_raises_in_client(self, store, config):
        async def body(daemon):
            blocker = await _raw_command(daemon.port, "SUBMIT AT=0 //nitf")
            assert blocker.startswith("ACK")
            client = AsyncTwoTierClient("//body", port=daemon.port)
            await client.connect()
            try:
                await client.tune()
                with pytest.raises(Backpressure):
                    await client.submit()
            finally:
                await client.close()

        _run(
            _with_daemon(
                store, config, DaemonConfig(autostart=False, max_pending=1), body
            )
        )

    def test_idempotent_uplink_key_dedups(self, store, config):
        async def body(daemon):
            a = await _raw_command(daemon.port, "SUBMIT AT=0 KEY=42 //nitf")
            b = await _raw_command(daemon.port, "SUBMIT AT=0 KEY=42 //nitf")
            return a, b, daemon.server.uplink_dedup_hits

        a, b, hits = _run(
            _with_daemon(store, config, DaemonConfig(autostart=False), body)
        )
        assert a.split()[1] == b.split()[1], "same key -> same query id"
        assert hits == 1


class TestLifecycle:
    def test_clients_complete_then_drain(self, store, config):
        async def body(daemon):
            clients = [
                AsyncTwoTierClient(q, port=daemon.port, arrival_time=0)
                for q in ("//nitf", "//body", "//head")
            ]
            for c in clients:
                await c.connect()
                await c.tune()
            for c in clients:
                await c.submit()
            daemon.start_broadcast()
            reports = await asyncio.gather(*(c.run_session() for c in clients))
            for c in clients:
                await c.close()
            return reports, daemon.status()

        net = DaemonConfig(autostart=False)
        (reports, status) = _run(_with_daemon(store, config, net, body))
        assert all(r.satisfied for r in reports)
        assert all(r.metrics.is_complete for r in reports)
        assert all(r.cycles_verified >= 1 for r in reports)
        assert status["completed"] == 3
        assert status["pending"] == 0

    def test_stop_mid_stream_sends_server_bye(self, store, config):
        """request_stop during a paced cycle still drains cleanly and the
        tuned client is told the downlink is over (acceptance: the daemon
        survives an interrupt mid-cycle)."""

        async def body():
            clock = ManualClock()
            net = DaemonConfig(
                autostart=False, bandwidth=50_000.0, clock=clock
            )
            daemon = BroadcastDaemon(store, config, net)
            await daemon.start()
            client = AsyncTwoTierClient("//nitf", port=daemon.port, arrival_time=0)
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            session = asyncio.create_task(client.run_session())
            # Let a few frames go out, then interrupt mid-broadcast.
            for _ in range(50):
                await asyncio.sleep(0)
            daemon.request_stop()
            report = await session
            await client.close()
            await daemon.wait_done()
            return report, daemon

        report, daemon = _run(body())
        # The drain finishes the pending query before closing, so the
        # client is satisfied despite the interrupt.
        assert report.satisfied
        assert daemon.cycles_streamed >= 1

    def test_max_queries_closes_admission(self, store, config):
        """The quota rejects further SUBMITs even before any broadcast."""

        async def body(daemon):
            first = await _raw_command(daemon.port, "SUBMIT AT=0 //nitf")
            second = await _raw_command(daemon.port, "SUBMIT AT=0 //body")
            return first, second

        net = DaemonConfig(autostart=False, max_queries=1)
        first, second = _run(_with_daemon(store, config, net, body))
        assert first.startswith("ACK")
        assert second.startswith("ERR admission closed")

    def test_max_queries_drains_after_quota(self, store, config):
        """Quota reached + pending served => the daemon exits by itself."""

        async def body():
            daemon = BroadcastDaemon(
                store, config, DaemonConfig(max_queries=1)
            )
            await daemon.start()
            client = AsyncTwoTierClient("//nitf", port=daemon.port, arrival_time=0)
            report = await client.run()
            await daemon.wait_done()  # no request_stop: the quota drains it
            return report, daemon

        report, daemon = _run(body())
        assert report.satisfied
        assert len(daemon.server.completed) == 1

    def test_preload_admits_workload(self, store, config, nitf_queries):
        async def body(daemon):
            admitted = daemon.preload(nitf_queries[:5])
            daemon.start_broadcast()
            for _ in range(2000):
                if not daemon.server.pending:
                    break
                await asyncio.sleep(0.01)
            return admitted, len(daemon.server.completed)

        net = DaemonConfig(autostart=False)
        admitted, completed = _run(_with_daemon(store, config, net, body))
        assert admitted >= 1
        assert completed == admitted


class TestPacing:
    def test_manual_clock_token_bucket_paces(self):
        async def body():
            clock = ManualClock()
            bucket = TokenBucket(1000.0, clock, burst=1000.0)
            # The bucket starts empty: the first acquire is pure debt.
            await bucket.acquire(1000)  # sleeps 1.0 simulated seconds
            await bucket.acquire(500)  # debt again: sleeps 0.5 more
            return clock.now()

        assert _run(body()) == pytest.approx(1.5)

    def test_bucket_starts_empty(self):
        """No free initial burst: byte 1 of cycle 1 is already paced."""

        async def body():
            clock = ManualClock()
            bucket = TokenBucket(1000.0, clock, burst=1000.0)
            await bucket.acquire(100)
            return clock.now()

        assert _run(body()) == pytest.approx(0.1)

    def test_unpaced_bucket_never_sleeps(self):
        async def body():
            clock = ManualClock()
            bucket = TokenBucket(None, clock)
            for _ in range(10):
                await bucket.acquire(10**9)
            return clock.now()

        assert _run(body()) == 0.0

    def test_paced_daemon_advances_injected_clock(self, store, config):
        """With bandwidth B and a ManualClock, streaming a cycle of N
        on-air bytes advances simulated time by about N/B seconds --
        wall-clock never enters the deterministic path."""

        async def body():
            clock = ManualClock()
            net = DaemonConfig(autostart=False, bandwidth=10_000.0, clock=clock)
            daemon = BroadcastDaemon(store, config, net)
            await daemon.start()
            client = AsyncTwoTierClient("//nitf", port=daemon.port, arrival_time=0)
            await client.connect()
            await client.tune()
            await client.submit()
            daemon.start_broadcast()
            report = await client.run_session()
            await client.close()
            daemon.request_stop()
            await daemon.wait_done()
            return report, clock.now(), daemon

        report, elapsed, daemon = _run(body())
        assert report.satisfied
        on_air = daemon.server.clock  # total on-air bytes of all cycles
        # The bucket starts empty and debt is repaid frame by frame, so
        # with a manual clock the elapsed simulated time is *exactly*
        # the on-air byte count over the bandwidth -- cycle 1 included.
        assert elapsed == pytest.approx(on_air / daemon.net.bandwidth)
