"""Unit tests for the exhaustive-listening bound."""

from __future__ import annotations

import pytest

from repro.baselines.naive import exhaustive_listening_bound
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.sim.results import SimulationResult


@pytest.fixture(scope="module")
def sim_result():
    return run_simulation(small_setup(track_naive_baseline=True))


class TestExhaustiveListeningBound:
    def test_empty_result(self):
        assert exhaustive_listening_bound(SimulationResult()) == 0.0

    def test_bound_dominates_two_tier(self, sim_result):
        bound = exhaustive_listening_bound(sim_result)
        assert bound > sim_result.mean_tuning_bytes("two-tier") * 0.5

    def test_bound_close_to_measured_naive_docs(self, sim_result):
        """The closed-form bound should roughly track the in-simulation
        naive client's document bytes (same cycles, same data segments)."""
        bound = exhaustive_listening_bound(sim_result)
        naive_docs = sum(
            r.doc_bytes for r in sim_result.records_for("naive")
        ) / max(1, len(sim_result.records_for("naive")))
        assert bound == pytest.approx(naive_docs, rel=0.35)
