"""Unit and property tests for the signature-index baseline."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.signature import (
    SignatureAccuracy,
    SignatureConfig,
    SignatureIndex,
    signature_tuning_bytes,
)
from repro.xpath.evaluator import matching_documents
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


class TestSignatureConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"signature_bits": 0},
            {"signature_bits": 100},  # not a multiple of 8
            {"bits_per_key": 0},
            {"signature_bits": 8, "bits_per_key": 9},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SignatureConfig(**kwargs)

    def test_signature_bytes(self):
        assert SignatureConfig(signature_bits=512).signature_bytes == 64


class TestSignatureIndex:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SignatureIndex([])

    def test_paper_example_soundness(self):
        from tests.xpath.test_evaluator import paper_documents

        docs = paper_documents()
        index = SignatureIndex(docs)
        for text in ("/a/b/a", "/a/c/a", "/a//c", "/a/b", "/a/c/*"):
            query = parse_query(text)
            truth = frozenset(matching_documents(query, docs))
            accuracy = index.accuracy(query, truth)
            assert accuracy.is_sound, text

    def test_false_drops_exist_with_tiny_signatures(self, nitf_docs):
        """The scheme's inaccuracy -- the paper's reason to prefer
        DataGuides -- shows up once signatures are small."""
        tiny = SignatureIndex(nitf_docs, SignatureConfig(signature_bits=16))
        query = parse_query("/nitf/body/body-content/table/tr/td")
        truth = frozenset(matching_documents(query, nitf_docs))
        accuracy = tiny.accuracy(query, truth)
        assert accuracy.is_sound
        assert accuracy.false_drop_count > 0
        assert accuracy.precision < 1.0

    def test_larger_signatures_improve_precision(self, nitf_docs):
        query = parse_query("/nitf/body/body-content/table/tr/td")
        truth = frozenset(matching_documents(query, nitf_docs))
        small = SignatureIndex(nitf_docs, SignatureConfig(signature_bits=64))
        big = SignatureIndex(nitf_docs, SignatureConfig(signature_bits=2048))
        assert big.accuracy(query, truth).precision >= small.accuracy(
            query, truth
        ).precision

    def test_all_wildcard_query_candidates_everything(self, nitf_docs):
        index = SignatureIndex(nitf_docs)
        assert index.candidates(parse_query("//*")) == frozenset(
            doc.doc_id for doc in nitf_docs
        )

    def test_table_bytes(self, nitf_docs):
        index = SignatureIndex(nitf_docs)
        model = index.size_model
        per_entry = model.doc_id_bytes + 64 + model.pointer_bytes
        assert index.table_bytes == model.count_bytes + len(nitf_docs) * per_entry

    def test_tuning_bytes_accounts_candidates(self, nitf_docs, nitf_store):
        index = SignatureIndex(nitf_docs)
        query = parse_query("/nitf/head/title")
        air = {doc.doc_id: nitf_store.air_bytes(doc.doc_id) for doc in nitf_docs}
        tuning = signature_tuning_bytes(index, query, air)
        table = index.size_model.packet_aligned_bytes(index.table_bytes)
        assert tuning >= table
        assert tuning == table + sum(
            air[d] for d in index.candidates(query)
        )

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_soundness_property(self, docs, query_list):
        """No false negatives, for any collection and query."""
        index = SignatureIndex(docs)
        for query in query_list:
            truth = frozenset(matching_documents(query, docs))
            assert index.accuracy(query, truth).is_sound, str(query)


class TestSignatureAccuracy:
    def test_precision_bounds(self):
        accuracy = SignatureAccuracy(
            candidate_count=10, true_count=8, false_drop_count=2, missed_count=0
        )
        assert accuracy.precision == 0.8
        assert accuracy.is_sound

    def test_empty_candidates(self):
        accuracy = SignatureAccuracy(0, 0, 0, 0)
        assert accuracy.precision == 1.0
