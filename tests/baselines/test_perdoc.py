"""Unit tests for the per-document embedded-index baseline."""

from __future__ import annotations

import pytest

from repro.baselines.perdoc import PerDocumentIndexBaseline
from repro.index.ci import build_full_ci
from repro.index.pruning import prune_to_pci
from repro.index.twotier import split_two_tier
from repro.xmlkit.model import XMLDocument, build_element


class TestPerDocumentIndexBaseline:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PerDocumentIndexBaseline().measure([])

    def test_index_bytes_positive(self, nitf_docs):
        baseline = PerDocumentIndexBaseline()
        assert baseline.index_bytes_for(nitf_docs[0]) > 0

    def test_uses_cached_guides(self, nitf_store):
        baseline = PerDocumentIndexBaseline()
        stats = baseline.measure(nitf_store.documents, nitf_store.guides)
        assert stats.document_count == len(nitf_store.documents)
        assert stats.index_bytes > 0

    def test_overhead_ratio(self, nitf_docs):
        stats = PerDocumentIndexBaseline().measure(nitf_docs)
        assert 0 < stats.overhead_ratio < 1
        assert stats.broadcast_bytes == stats.data_bytes + stats.index_bytes

    def test_order_of_magnitude_above_two_tier(self, nitf_docs, nitf_queries):
        """The paper's comparison: embedded indexes ~10% of data, two-tier
        PCI well under 1/10th of that."""
        stats = PerDocumentIndexBaseline().measure(nitf_docs)
        ci = build_full_ci(nitf_docs)
        pci, _ = prune_to_pci(ci, nitf_queries)
        two_tier = split_two_tier(pci)
        two_tier_ratio = two_tier.first_tier_bytes / stats.data_bytes
        assert stats.overhead_ratio > 5 * two_tier_ratio

    def test_tiny_document(self):
        doc = XMLDocument(0, build_element("a"))
        baseline = PerDocumentIndexBaseline()
        stats = baseline.measure([doc])
        # One guide node: header + one intra-doc pointer entry.
        model = baseline.size_model
        assert stats.index_bytes == model.node_bytes(0, 1, one_tier=True)
