"""Cross-module property tests: whole-pipeline invariants under random
collections and workloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.onetier import OneTierClient
from repro.client.twotier import TwoTierClient
from repro.xpath.ast import XPathQuery
from repro.xpath.evaluator import matching_documents
from tests.strategies import document_collections, queries


def _servable(query_list, docs):
    """Queries with non-empty results (the system's admission rule)."""
    return [
        query
        for query in query_list
        if matching_documents(query, docs)
    ]


@given(document_collections(min_docs=2), st.lists(queries(), min_size=1, max_size=4))
@settings(max_examples=25)
def test_every_client_retrieves_exactly_its_results(docs, query_list):
    """Liveness + safety of the whole stack on random inputs: every
    admitted query's clients terminate with exactly the oracle result set,
    under both protocols, even with per-cycle capacity pressure."""
    servable = _servable(query_list, docs)
    if not servable:
        return
    store = DocumentStore(docs)
    server = BroadcastServer(store, cycle_data_capacity=256)
    sessions = []
    for query in servable:
        server.submit(query, 0)
        sessions.append((query, TwoTierClient(query, 0), OneTierClient(query, 0)))
    for _round in range(200):
        cycle = server.build_cycle()
        if cycle is None:
            break
        for _query, two, one in sessions:
            two.on_cycle(cycle)
            one.on_cycle(cycle)
    else:  # pragma: no cover - would mean livelock
        raise AssertionError("server failed to drain in 200 cycles")
    for query, two, one in sessions:
        expected = matching_documents(query, docs)
        assert two.satisfied and one.satisfied, str(query)
        assert two.received_doc_ids == expected
        assert one.received_doc_ids == expected


@given(document_collections(min_docs=2), st.lists(queries(), min_size=1, max_size=4))
@settings(max_examples=25)
def test_equation_one_holds_exactly(docs, query_list):
    """Eq. (1): TT_index = L_I(read once) + sum of per-cycle L_O reads."""
    servable = _servable(query_list, docs)
    if not servable:
        return
    store = DocumentStore(docs)
    server = BroadcastServer(store, cycle_data_capacity=256)
    from repro.client.protocol import FirstTierRead

    query = servable[0]
    server.submit(query, 0)
    for extra in servable[1:]:
        server.submit(extra, 0)
    client = TwoTierClient(query, 0, first_tier_read=FirstTierRead.FULL)
    cycles = []
    for _round in range(200):
        cycle = server.build_cycle()
        if cycle is None:
            break
        cycles.append(cycle)
        client.on_cycle(cycle)
    assert client.satisfied
    n = client.metrics.cycles_listened
    packet = store.size_model.packet_bytes
    expected = (
        packet  # initial probe
        + cycles[0].first_tier_bytes  # L_I, once
        + sum(c.offset_list_air_bytes for c in cycles[:n])  # n * L_O
    )
    assert client.metrics.index_lookup_bytes == expected


@given(document_collections(min_docs=2), st.lists(queries(), min_size=1, max_size=4))
@settings(max_examples=25)
def test_broadcast_only_requested_documents(docs, query_list):
    """'If a document is never requested, it will not be broadcast.'"""
    servable = _servable(query_list, docs)
    if not servable:
        return
    store = DocumentStore(docs)
    server = BroadcastServer(store, cycle_data_capacity=512)
    requested = set()
    for query in servable:
        server.submit(query, 0)
        requested |= matching_documents(query, docs)
    broadcast = set()
    for _round in range(200):
        cycle = server.build_cycle()
        if cycle is None:
            break
        broadcast |= set(cycle.doc_ids)
    assert broadcast == requested
