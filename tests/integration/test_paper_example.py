"""End-to-end replay of the paper's running example (Figures 2-7).

The five documents and six queries of Section 3 flow through the entire
pipeline: filtering, CI construction, pruning, the two-tier split and the
client protocols.  Every paper statement that survives in the available
text is asserted here.
"""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.onetier import OneTierClient
from repro.client.twotier import TwoTierClient
from repro.filtering.yfilter import YFilterEngine
from repro.index.ci import build_full_ci
from repro.index.packing import pack_index
from repro.index.pruning import prune_to_pci
from repro.index.twotier import split_two_tier
from repro.xpath.parser import parse_query

QUERY_TEXTS = ["/a/b/a", "/a/c/a", "/a//c", "/a/b", "/a/c/*", "/a/c/a"]

#: Figure 2(b): matched document ID lists (0-based: d1 -> 0 ... d5 -> 4).
EXPECTED_RESULTS = {
    0: {0, 1},  # q1
    1: {3, 4},  # q2
    2: {1, 2, 3, 4},  # q3
    3: {0, 1, 2, 4},  # q4
    4: {1, 3, 4},  # q5
    5: {3, 4},  # q6
}


@pytest.fixture(scope="module")
def docs():
    from tests.xpath.test_evaluator import paper_documents

    return paper_documents()


@pytest.fixture(scope="module")
def queries():
    return [parse_query(text) for text in QUERY_TEXTS]


class TestFigure2:
    def test_query_result_table(self, docs, queries):
        engine = YFilterEngine.from_queries(queries)
        result = engine.filter_collection(docs)
        assert result.docs_per_query == EXPECTED_RESULTS


class TestFigure3:
    def test_ci_structure(self, docs):
        ci = build_full_ci(docs)
        # Our reconstruction has 7 guide nodes (the paper's figure shows 9
        # for its unrecoverable exact document set; all recoverable
        # annotations below agree).
        assert ci.node_count == 7
        assert ci.find_node(("a", "b", "a")).doc_ids == (0, 1)

    def test_q1_walkthrough(self, docs):
        """Section 3.1: q1 descends a -> b -> leaf (a,b,a), reads d1, d2."""
        ci = build_full_ci(docs)
        lookup = ci.lookup(parse_query("/a/b/a"))
        assert lookup.doc_ids == (0, 1)
        walked = sorted(
            ci.nodes[i].path_from_root() for i in lookup.visited_node_ids
        )
        assert ("a",) in walked and ("a", "b") in walked and ("a", "b", "a") in walked
        # The /a/c branch dies immediately: never visited.
        assert ("a", "c") not in walked

    def test_d2_annotated_three_times(self, docs):
        """Section 3.3: d2's pointer appears exactly three times in CI."""
        ci = build_full_ci(docs)
        assert sum(1 for node in ci.nodes if 1 in node.doc_ids) == 3


class TestFigure5Packing:
    def test_nodes_packed_fewer_packets_than_nodes(self, docs):
        ci = build_full_ci(docs)
        packed = pack_index(ci, one_tier=True)
        assert packed.packet_count < ci.node_count

    def test_q1_touches_prefix_packets_only(self, docs):
        """'Rather than downloading the entire index, clients only need to
        access packet P1 to answer q1' -- with our sizes the walk stays in
        the leading packet(s), never the trailing ones."""
        ci = build_full_ci(docs)
        packed = pack_index(ci, one_tier=True)
        lookup = ci.lookup(parse_query("/a/b/a"))
        touched = packed.packets_for_nodes(lookup.visited_node_ids)
        assert max(touched) < packed.packet_count - 1 or packed.packet_count == 1


class TestFigure6Pruning:
    def test_exact_kept_set(self, docs):
        ci = build_full_ci(docs)
        pci, stats = prune_to_pci(
            ci, [parse_query("/a/b"), parse_query("/a/b/c")]
        )
        assert {n.path_from_root() for n in pci.nodes} == {
            ("a",),
            ("a", "b"),
            ("a", "b", "c"),
        }
        assert stats.nodes_after == 3


class TestFigure7TwoTier:
    def test_two_tier_split_sizes(self, docs, queries):
        ci = build_full_ci(docs)
        pci, _ = prune_to_pci(ci, queries)
        two_tier = split_two_tier(pci)
        assert two_tier.first_tier_bytes < two_tier.one_tier_bytes()

    def test_q1_two_tier_protocol(self, docs):
        """Section 3.3's walkthrough: q1 reads the first tier for IDs
        (d1, d2), then the second tier for their offsets."""
        store = DocumentStore(docs)
        server = BroadcastServer(store, cycle_data_capacity=1_000_000)
        query = parse_query("/a/b/a")
        server.submit(query, 0)
        cycle = server.build_cycle()
        client = TwoTierClient(query, 0)
        client.on_cycle(cycle)
        assert client.expected_doc_ids == frozenset({0, 1})
        assert client.received_doc_ids == {0, 1}
        offsets = cycle.offset_list.lookup({0, 1})
        assert set(offsets) == {0, 1}


class TestFullBroadcast:
    def test_all_six_queries_served(self, docs, queries):
        store = DocumentStore(docs)
        server = BroadcastServer(store, cycle_data_capacity=256)
        clients = []
        for query in queries:
            server.submit(query, 0)
            clients.append(
                (TwoTierClient(query, 0), OneTierClient(query, 0), query)
            )
        for _ in range(50):
            cycle = server.build_cycle()
            if cycle is None:
                break
            for two, one, _query in clients:
                two.on_cycle(cycle)
                one.on_cycle(cycle)
        for index, (two, one, query) in enumerate(clients):
            assert two.satisfied, str(query)
            assert one.satisfied, str(query)
            assert two.received_doc_ids == EXPECTED_RESULTS[index]
            assert one.received_doc_ids == EXPECTED_RESULTS[index]
