"""Cached vs from-scratch cycle builds must be byte-identical.

The incremental cycle-build caches (``repro.broadcast.cycle_cache``) are
a pure optimisation: a server with ``enable_caches=True`` and one with
``enable_caches=False`` fed the same submissions must emit cycle
programs with equal :func:`~repro.broadcast.program.program_signature`
fingerprints -- including across live collection mutations, which
exercise the invalidation paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.program import program_signature
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries


def make_pair(docs, **kwargs):
    """Two servers over independent stores of the same documents."""
    cached = BroadcastServer(DocumentStore(docs), enable_caches=True, **kwargs)
    plain = BroadcastServer(DocumentStore(docs), enable_caches=False, **kwargs)
    return cached, plain


def assert_cycles_match(cached, plain, now=None):
    cycle_a = cached.build_cycle(now)
    cycle_b = plain.build_cycle(now)
    if cycle_a is None or cycle_b is None:
        assert cycle_a is None and cycle_b is None
        return None
    assert program_signature(cycle_a) == program_signature(cycle_b)
    return cycle_a


class TestScriptedEquivalence:
    def test_steady_drain(self, nitf_docs, nitf_queries):
        """Overlapping queries drained over many small-capacity cycles:
        every cycle program matches the uncached server's."""
        cached, plain = make_pair(nitf_docs, cycle_data_capacity=4_000)
        admitted = 0
        for query in nitf_queries:
            try:
                cached.submit(query, arrival_time=0)
            except ValueError:
                continue  # empty result set: skip on both servers
            plain.submit(query, arrival_time=0)
            admitted += 1
        assert admitted >= 10
        cycles = 0
        while cached.pending or plain.pending:
            assert assert_cycles_match(cached, plain) is not None
            cycles += 1
            assert cycles < 500
        assert cycles >= 20  # a real steady-state drain, not a one-shot
        assert cached.cache.stats["ci_incremental"] > 0
        assert cached.cache.stats["dfa_hits"] > 0

    def test_equivalence_across_collection_mutation(self):
        """add/remove_document between cycles invalidates the caches; the
        programs must stay identical through it."""
        docs = [
            XMLDocument(0, build_element("a", build_element("b", text="x" * 40))),
            XMLDocument(1, build_element("a", build_element("b", build_element("c")))),
            XMLDocument(2, build_element("a", build_element("c", text="y" * 60))),
        ]
        cached, plain = make_pair(docs, cycle_data_capacity=64)
        for server in (cached, plain):
            server.submit(parse_query("/a/b"), 0)
            server.submit(parse_query("/a//c"), 0)
        assert_cycles_match(cached, plain)

        extra = XMLDocument(7, build_element("a", build_element("b", text="z" * 30)))
        for server in (cached, plain):
            server.add_document(extra)
            server.submit(parse_query("/a/b"), server.clock)
        assert_cycles_match(cached, plain)

        for server in (cached, plain):
            server.remove_document(2)
        while cached.pending or plain.pending:
            assert_cycles_match(cached, plain)

    def test_no_cache_server_has_no_cache(self, nitf_docs):
        _cached, plain = make_pair(nitf_docs)
        assert plain.cache is None

    @pytest.mark.parametrize("scheduler_name", ["fcfs", "mrf", "rxw", "leelo"])
    def test_equivalence_per_scheduler(self, nitf_docs, nitf_queries, scheduler_name):
        from repro.broadcast.scheduling import make_scheduler

        cached = BroadcastServer(
            DocumentStore(nitf_docs),
            scheduler=make_scheduler(scheduler_name, DocumentStore(nitf_docs)),
            cycle_data_capacity=8_000,
            enable_caches=True,
        )
        plain = BroadcastServer(
            DocumentStore(nitf_docs),
            scheduler=make_scheduler(scheduler_name, DocumentStore(nitf_docs)),
            cycle_data_capacity=8_000,
            enable_caches=False,
        )
        for query in nitf_queries[:12]:
            try:
                cached.submit(query, 0)
            except ValueError:
                continue
            plain.submit(query, 0)
        guard = 0
        while cached.pending or plain.pending:
            assert assert_cycles_match(cached, plain) is not None
            guard += 1
            assert guard < 300


class TestPropertyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        document_collections(min_docs=2, max_docs=6),
        st.lists(queries(max_steps=3), min_size=1, max_size=5),
        st.integers(min_value=64, max_value=512),
    )
    def test_random_workloads_byte_identical(self, docs, query_list, capacity):
        cached, plain = make_pair(docs, cycle_data_capacity=capacity)
        admitted = 0
        for query in query_list:
            try:
                cached.submit(query, 0)
            except ValueError:
                continue
            plain.submit(query, 0)
            admitted += 1
        if not admitted:
            return
        guard = 0
        while cached.pending or plain.pending:
            assert assert_cycles_match(cached, plain) is not None
            guard += 1
            assert guard < 200
