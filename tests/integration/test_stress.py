"""Soak test: a longer run with global conservation checks.

A mid-size simulation (hundreds of sessions, tens of cycles, cycle
validation on) with assertions that only hold if *all* the bookkeeping
across server, scheduler, program builder and clients is consistent.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.simulation import Simulation
from repro.xpath.evaluator import matching_documents


@pytest.fixture(scope="module")
def soak():
    config = SimulationConfig(
        document_count=150,
        n_q=60,
        arrival_cycles=3,
        cycle_data_capacity=60_000,
        validate_cycles=True,
        max_cycles=300,
    )
    simulation = Simulation(config)
    result = simulation.run()
    return config, simulation, result


class TestGlobalConservation:
    def test_run_drains_with_validation_on(self, soak):
        _config, _sim, result = soak
        assert result.completed
        assert len(result.cycles) > 10

    def test_every_session_accounted(self, soak):
        config, _sim, result = soak
        sessions = config.total_queries()
        assert len(result.records_for("one-tier")) == sessions
        assert len(result.records_for("two-tier")) == sessions

    def test_clients_received_exact_oracle_sets(self, soak):
        _config, simulation, _result = soak
        documents = simulation.documents
        for session in simulation.sessions:
            expected = matching_documents(session.plan.query, documents)
            for client in session.clients:
                assert client.received_doc_ids == expected, str(session.plan.query)

    def test_server_queue_empty(self, soak):
        _config, simulation, _result = soak
        assert simulation.server.pending == []
        assert len(simulation.server.completed) > 0

    def test_downloads_confined_to_requested_documents(self, soak):
        _config, simulation, _result = soak
        requested = set()
        for session in simulation.sessions:
            requested |= set(session.pending.result_doc_ids)
        downloaded = set()
        for session in simulation.sessions:
            for client in session.clients:
                downloaded |= client.received_doc_ids
        assert downloaded <= requested

    def test_cycle_times_are_contiguous(self, soak):
        _config, _sim, result = soak
        cycles = sorted(result.cycles, key=lambda c: c.start_time)
        for first, second in zip(cycles, cycles[1:]):
            assert second.start_time == first.start_time + first.total_bytes

    def test_cycle_data_within_capacity_modulo_one_doc(self, soak):
        config, _sim, result = soak
        # The scheduler may overshoot by at most one (packet-aligned) doc.
        slack = 64_000  # generous single-document bound for this DTD
        for cycle in result.cycles:
            assert cycle.data_bytes <= config.cycle_data_capacity + slack

    def test_deterministic_repeat(self, soak):
        config, _sim, result = soak
        again = Simulation(config).run()
        assert again.summary() == result.summary()
        assert [c.total_bytes for c in again.cycles] == [
            c.total_bytes for c in result.cycles
        ]

    def test_mean_lookup_ordering_at_scale(self, soak):
        _config, _sim, result = soak
        assert result.mean_index_lookup_bytes("two-tier") * 2 < (
            result.mean_index_lookup_bytes("one-tier")
        )
