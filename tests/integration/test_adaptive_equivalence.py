"""The adaptive control plane's two contracts, differentially tested.

Off (the default): every program byte is identical to a build that
predates the control plane -- pinned by comparing per-cycle
:func:`~repro.broadcast.program.program_signature` streams between a
static run and an adaptive run whose controller band is clamped to the
static configuration (K pinned, policy switching disabled, no hot set,
governor unreachable).  The clamp proves the adaptive *machinery* --
multi-channel builder routing, acknowledged delivery, per-cycle
``apply_plan`` -- adds nothing to the air program until a law actually
fires.  The live daemon gets the same differential over the wire.

On: a flash-crowd run must grow K, drain completely, and strand no
query across plan transitions -- including the satellite regression
that a document deferred by a cross-channel conflict survives a
mid-session K change.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.broadcast.program import program_signature
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.multichannel import MultiChannelTwoTierClient
from repro.control import ControlConfig, CyclePlan
from repro.net import AsyncTwoTierClient, BroadcastDaemon, DaemonConfig
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation
from repro.xpath.parser import parse_query


def clamped_control(k: int) -> ControlConfig:
    """A controller band pinned to the static configuration: K cannot
    move, no policy ever beats the margin, the hot channel is off, and
    the governor threshold is unreachable."""
    return ControlConfig(
        k_min=k,
        k_max=k,
        policy_switch_margin=1_000.0,
        hot_set_size=0,
        shed_backlog_factor=1e9,
    )


class _SignedSimulation(Simulation):
    """Collect the program signature of every aired cycle."""

    def _record_cycle(self, cycle):
        self.signatures = getattr(self, "signatures", [])
        self.signatures.append(program_signature(cycle))
        super()._record_cycle(cycle)


class TestStaticByteIdentity:
    def test_clamped_adaptive_matches_single_channel(self, nitf_docs):
        static = _SignedSimulation(small_setup(), documents=nitf_docs)
        static.run()
        adaptive = _SignedSimulation(
            small_setup(adaptive=True, control=clamped_control(1)),
            documents=nitf_docs,
        )
        adaptive.run()
        assert adaptive.signatures == static.signatures
        assert adaptive.controller is not None
        assert adaptive.controller.k_changes == 0
        assert adaptive.controller.policy_switches == 0

    @pytest.mark.parametrize("allocation", ("round-robin", "balanced", "demand"))
    def test_clamped_adaptive_matches_static_k2(self, nitf_docs, allocation):
        config = small_setup(
            num_data_channels=2, channel_allocation=allocation
        )
        static = _SignedSimulation(config, documents=nitf_docs)
        static_result = static.run()
        adaptive = _SignedSimulation(
            config.with_(adaptive=True, control=clamped_control(2)),
            documents=nitf_docs,
        )
        adaptive_result = adaptive.run()
        assert adaptive.signatures == static.signatures
        # Same programs, same multi-channel client behaviour.
        assert adaptive_result.mean_access_bytes(
            "two-tier-multi"
        ) == static_result.mean_access_bytes("two-tier-multi")

    def test_static_config_builds_no_controller(self, nitf_docs):
        sim = Simulation(small_setup(), documents=nitf_docs)
        assert sim.controller is None


class TestDaemonByteIdentity:
    def _signatures(self, store, config, expect_adaptive):
        async def body():
            daemon = BroadcastDaemon(
                store, config, DaemonConfig(autostart=False, max_queries=1)
            )
            await daemon.start()
            try:
                client = AsyncTwoTierClient(
                    "//nitf", port=daemon.port, arrival_time=0
                )
                await client.connect()
                await client.tune()
                assert client.adaptive is expect_adaptive
                await client.submit()
                daemon.start_broadcast()
                report = await client.run_session()
                await client.close()
                assert report.satisfied
                return report.signatures
            finally:
                daemon.request_stop()
                await daemon.wait_done()

        return asyncio.run(asyncio.wait_for(body(), timeout=60))

    def test_clamped_adaptive_daemon_streams_identical_programs(
        self, nitf_docs
    ):
        store = DocumentStore(nitf_docs[:30])
        config = small_setup(document_count=30)
        static = self._signatures(store, config, expect_adaptive=False)
        adaptive = self._signatures(
            store,
            config.with_(adaptive=True, control=clamped_control(1)),
            expect_adaptive=True,
        )
        assert static and adaptive == static


class TestAdaptiveEndToEnd:
    def test_flash_crowd_grows_k_and_drains(self, nitf_docs):
        config = small_setup(
            adaptive=True,
            control=ControlConfig(k_max=3, cooldown_cycles=1),
            scenario="flash",
            scenario_intensity=4.0,
            n_q=20,
            arrival_cycles=6,
            cycle_data_capacity=6_000,
            max_cycles=400,
        )
        sim = Simulation(config, documents=nitf_docs)
        result = sim.run()
        assert result.completed
        assert sim.controller is not None
        assert sim.controller.k_changes >= 1
        assert max(p.num_channels for p in sim.controller.plans) >= 2
        # Every admitted client drained: nobody was stranded by a plan
        # transition (completion_time is stamped only on satisfaction).
        multi = result.records_for("two-tier-multi")
        assert multi and all(r.access_bytes >= 0 for r in multi)

    def test_plan_decisions_land_in_control_metrics(self, nitf_docs):
        from repro import obs

        config = small_setup(
            adaptive=True,
            control=ControlConfig(k_max=3, cooldown_cycles=1),
            scenario="flash",
            scenario_intensity=4.0,
            n_q=20,
            arrival_cycles=4,
            cycle_data_capacity=6_000,
            max_cycles=400,
        )
        with obs.observed() as registry:
            sim = Simulation(config, documents=nitf_docs)
            result = sim.run()
        assert result.completed
        flat = str(registry.snapshot())
        assert "control.num_channels" in flat
        assert "control.plans_total" in flat


class TestDeferralAcrossKChange:
    """Satellite regression: a document deferred by a cross-channel
    conflict must survive a mid-session K change.

    The server runs acknowledged delivery (as every adaptive run does),
    so a deferred document stays in the query's remaining set and
    re-airs after ``apply_plan`` reshapes the channel layout."""

    def _drive(self, docs, plans_by_cycle):
        store = DocumentStore(docs)
        server = BroadcastServer(
            store,
            cycle_data_capacity=sum(
                store.air_bytes(d) for d in store.by_id
            ),
            num_data_channels=2,
            acknowledged_delivery=True,
        )
        query = parse_query("//nitf")
        pending = server.submit(query, 0)
        client = MultiChannelTwoTierClient(query, 0)
        for cycle_index in range(20):
            cycle = server.build_cycle()
            if cycle is None:
                break
            client.on_cycle(cycle)
            server.confirm_delivery(
                pending, set(client.received_doc_ids), cycle
            )
            plan = plans_by_cycle.get(cycle_index)
            if plan is not None:
                server.apply_plan(plan)
        return server, client

    def test_deferred_doc_survives_k_growth(self, nitf_docs):
        server, client = self._drive(
            nitf_docs[:12],
            {0: CyclePlan(cycle_number=1, num_channels=3, allocation="balanced")},
        )
        assert client.deferred_doc_ids  # the conflict actually happened
        assert client.satisfied
        assert server.num_data_channels == 3
        assert not server.pending

    def test_deferred_doc_survives_k_shrink(self, nitf_docs):
        server, client = self._drive(
            nitf_docs[:12],
            {0: CyclePlan(cycle_number=1, num_channels=1, allocation="balanced")},
        )
        assert client.deferred_doc_ids
        assert client.satisfied  # K=1 re-air has no conflicts left
        assert server.num_data_channels == 1
        assert not server.pending

    def test_adaptive_config_forces_acknowledged_delivery(self):
        """The server-side half of the fix: an adaptive run may grow K
        mid-flight, so it must never assume broadcast == received."""
        config = small_setup(adaptive=True)
        assert config.needs_acknowledged_delivery
        assert small_setup().needs_acknowledged_delivery is False
