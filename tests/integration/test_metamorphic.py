"""Metamorphic properties of the index pipeline.

Each test transforms the input (collection or workload) in a way whose
effect on the output is known exactly, and asserts the relation holds
through filtering, CI construction, pruning and lookup.  These catch
bugs that point tests with fixed oracles miss.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.index.ci import build_full_ci
from repro.index.pruning import prune_to_pci
from repro.xmlkit.model import XMLDocument, XMLElement
from repro.xpath.ast import Axis, Step, WILDCARD, XPathQuery
from repro.xpath.evaluator import matching_documents
from tests.strategies import document_collections, queries


def _rename(element: XMLElement, mapping) -> XMLElement:
    clone = XMLElement(mapping.get(element.tag, element.tag), text=element.text)
    for child in element.children:
        clone.append(_rename(child, mapping))
    return clone


def _rename_query(query: XPathQuery, mapping) -> XPathQuery:
    return XPathQuery.from_steps(
        Step(
            step.axis,
            step.test if step.test == WILDCARD else mapping.get(step.test, step.test),
        )
        for step in query.steps
    )


class TestRenamingInvariance:
    """A consistent label renaming must not change any verdict."""

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_results_invariant_under_renaming(self, docs, query_list):
        mapping = {"a": "alpha", "b": "beta", "c": "gamma", "d": "delta", "e": "eps"}
        renamed_docs = [
            XMLDocument(doc.doc_id, _rename(doc.root, mapping)) for doc in docs
        ]
        renamed_queries = [_rename_query(q, mapping) for q in query_list]
        for original_q, renamed_q in zip(query_list, renamed_queries):
            before = matching_documents(original_q, docs)
            after = matching_documents(renamed_q, renamed_docs)
            assert before == after, str(original_q)

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_pci_size_invariant_under_renaming(self, docs, query_list):
        mapping = {"a": "alpha", "b": "beta", "c": "gamma", "d": "delta", "e": "eps"}
        renamed_docs = [
            XMLDocument(doc.doc_id, _rename(doc.root, mapping)) for doc in docs
        ]
        renamed_queries = [_rename_query(q, mapping) for q in query_list]
        _, stats = prune_to_pci(build_full_ci(docs), query_list)
        _, renamed_stats = prune_to_pci(
            build_full_ci(renamed_docs), renamed_queries
        )
        assert stats.nodes_after == renamed_stats.nodes_after
        assert stats.doc_entries_after == renamed_stats.doc_entries_after


class TestCollectionMonotonicity:
    """Adding documents never removes results; removing never adds."""

    @given(document_collections(min_docs=2), queries(max_steps=4))
    def test_adding_a_document_only_adds_its_own_id(self, docs, query):
        base = docs[:-1]
        extra = docs[-1]
        before = matching_documents(query, base)
        after = matching_documents(query, docs)
        assert before <= after
        assert after - before <= {extra.doc_id}

    @given(document_collections(min_docs=2), st.lists(queries(), min_size=1, max_size=3))
    def test_ci_lookup_monotone_in_collection(self, docs, query_list):
        base_ci = build_full_ci(docs[:-1])
        full_ci = build_full_ci(docs)
        for query in query_list:
            smaller = set(base_ci.lookup(query).doc_ids)
            bigger = set(full_ci.lookup(query).doc_ids)
            assert smaller <= bigger, str(query)


class TestWorkloadMonotonicity:
    """Adding pending queries can only grow the PCI, never shrink it."""

    @given(
        document_collections(),
        st.lists(queries(), min_size=1, max_size=3),
        queries(max_steps=4),
    )
    def test_pci_grows_with_the_workload(self, docs, query_list, extra):
        ci = build_full_ci(docs)
        _, small_stats = prune_to_pci(ci, query_list)
        _, big_stats = prune_to_pci(ci, query_list + [extra])
        assert big_stats.nodes_after >= small_stats.nodes_after
        assert big_stats.bytes_after >= small_stats.bytes_after

    @given(document_collections(), st.lists(queries(), min_size=1, max_size=3))
    def test_pruning_idempotent_on_results(self, docs, query_list):
        """Pruning the PCI again with the same queries changes nothing."""
        ci = build_full_ci(docs)
        pci, first = prune_to_pci(ci, query_list)
        pci2, second = prune_to_pci(pci, query_list)
        assert second.nodes_after == first.nodes_after
        assert second.bytes_after == first.bytes_after
        for query in query_list:
            assert pci2.lookup(query).doc_ids == pci.lookup(query).doc_ids


class TestDuplicationInvariance:
    @given(document_collections(min_docs=1, max_docs=4), queries(max_steps=4))
    def test_structural_clone_matches_iff_original_does(self, docs, query):
        """A structural copy of a document (fresh id) gets exactly the
        original's verdict."""
        original = docs[0]
        clone = XMLDocument(
            doc_id=max(d.doc_id for d in docs) + 1,
            root=_rename(original.root, {}),
        )
        results = matching_documents(query, list(docs) + [clone])
        assert (original.doc_id in results) == (clone.doc_id in results)
