"""Single-channel vs K=1 multichannel builds must be byte-identical.

The multichannel cycle builder (``repro.broadcast.multichannel``) is a
generalisation, not a fork: with one data channel it must emit exactly
the single-channel program -- equal
:func:`~repro.broadcast.program.program_signature` fingerprints (which
cover the channel assignment), the channel field elided from the second
tier, and every client protocol's end-to-end metrics unchanged.  The
scripted suite pins this per allocation policy and across live
collection mutation; the Hypothesis suite fuzzes workloads and
mutations.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.multichannel import ALLOCATION_POLICIES, MultiChannelCycle
from repro.broadcast.program import program_signature
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xmlkit.model import XMLDocument, build_element
from repro.xpath.parser import parse_query
from tests.strategies import document_collections, queries

ALL_PROTOCOLS = ("one-tier", "two-tier", "two-tier-multi")


def make_pair(docs, allocation="balanced", **kwargs):
    """A single-channel server and a K=1 multichannel server."""
    single = BroadcastServer(DocumentStore(docs), **kwargs)
    multi = BroadcastServer(
        DocumentStore(docs),
        num_data_channels=1,
        channel_allocation=allocation,
        **kwargs,
    )
    return single, multi


def submit_both(single, multi, query_list, arrival_time=0):
    admitted = 0
    for query in query_list:
        try:
            single.submit(query, arrival_time)
        except ValueError:
            continue  # empty result set: skip on both servers
        multi.submit(query, arrival_time)
        admitted += 1
    return admitted


def assert_cycles_match(single, multi, now=None):
    cycle_s = single.build_cycle(now)
    cycle_m = multi.build_cycle(now)
    if cycle_s is None or cycle_m is None:
        assert cycle_s is None and cycle_m is None
        return None
    assert not isinstance(cycle_s, MultiChannelCycle)
    assert isinstance(cycle_m, MultiChannelCycle)
    assert program_signature(cycle_s) == program_signature(cycle_m)
    # Byte identity, not just fingerprint identity: same layout, same
    # on-air second-tier length (channel field elided at K=1), same
    # placement.
    assert cycle_m.layout.segments == cycle_s.layout.segments
    assert cycle_m.offset_list_air_bytes == cycle_s.offset_list_air_bytes
    assert cycle_m.doc_offsets == cycle_s.doc_offsets
    assert cycle_m.total_bytes == cycle_s.total_bytes
    return cycle_m


class TestScriptedEquivalence:
    @pytest.mark.parametrize("allocation", ALLOCATION_POLICIES)
    def test_steady_drain_per_policy(self, nitf_docs, nitf_queries, allocation):
        """Every allocation policy degenerates to the identity at K=1."""
        single, multi = make_pair(
            nitf_docs, allocation=allocation, cycle_data_capacity=4_000
        )
        assert submit_both(single, multi, nitf_queries) >= 10
        cycles = 0
        while single.pending or multi.pending:
            assert assert_cycles_match(single, multi) is not None
            cycles += 1
            assert cycles < 500
        assert cycles >= 20  # a real steady-state drain, not a one-shot

    def test_equivalence_across_collection_mutation(self):
        """add/remove_document between cycles; programs stay identical."""
        docs = [
            XMLDocument(0, build_element("a", build_element("b", text="x" * 40))),
            XMLDocument(1, build_element("a", build_element("b", build_element("c")))),
            XMLDocument(2, build_element("a", build_element("c", text="y" * 60))),
        ]
        single, multi = make_pair(docs, cycle_data_capacity=64)
        for server in (single, multi):
            server.submit(parse_query("/a/b"), 0)
            server.submit(parse_query("/a//c"), 0)
        assert_cycles_match(single, multi)

        extra = XMLDocument(7, build_element("a", build_element("b", text="z" * 30)))
        for server in (single, multi):
            server.add_document(extra)
            server.submit(parse_query("/a/b"), server.clock)
        assert_cycles_match(single, multi)

        for server in (single, multi):
            server.remove_document(2)
        while single.pending or multi.pending:
            assert_cycles_match(single, multi)

    def test_signature_covers_channel_assignment(self, nitf_docs, nitf_queries):
        """At K>=2 the fingerprint must change when only the channel
        assignment changes (round-robin vs balanced on the same schedule)."""
        servers = {
            policy: BroadcastServer(
                DocumentStore(nitf_docs),
                num_data_channels=3,
                channel_allocation=policy,
                cycle_data_capacity=12_000,
            )
            for policy in ("round-robin", "balanced")
        }
        for query in nitf_queries[:10]:
            try:
                servers["round-robin"].submit(query, 0)
            except ValueError:
                continue
            servers["balanced"].submit(query, 0)
        cycle_rr = servers["round-robin"].build_cycle()
        cycle_bal = servers["balanced"].build_cycle()
        assert cycle_rr is not None and cycle_bal is not None
        assert tuple(cycle_rr.doc_ids) == tuple(cycle_bal.doc_ids)
        if cycle_rr.doc_channels != cycle_bal.doc_channels:
            assert program_signature(cycle_rr) != program_signature(cycle_bal)

    @pytest.mark.parametrize("allocation", ALLOCATION_POLICIES)
    def test_simulation_client_metrics_identical(self, allocation):
        """End-to-end: a K=1 multichannel simulation reproduces every
        protocol's client records, and the multichannel client's records
        equal the two-tier client's."""
        base = dict(document_count=40, n_q=12, cycle_data_capacity=10_000)
        res_single = run_simulation(small_setup(**base))
        res_multi = run_simulation(
            small_setup(
                num_data_channels=1, channel_allocation=allocation, **base
            )
        )
        assert res_single.completed and res_multi.completed
        for protocol in ("one-tier", "two-tier"):
            assert res_multi.records_for(protocol) == res_single.records_for(
                protocol
            )
        multi_records = res_multi.records_for("two-tier-multi")
        twotier_records = res_multi.records_for("two-tier")
        assert len(multi_records) == len(twotier_records) > 0
        for mine, theirs in zip(multi_records, twotier_records):
            assert mine.access_bytes == theirs.access_bytes
            assert mine.tuning_bytes == theirs.tuning_bytes
            assert mine.index_lookup_bytes == theirs.index_lookup_bytes
            assert mine.cycles_listened == theirs.cycles_listened
            assert mine.result_doc_count == theirs.result_doc_count


class TestPropertyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        document_collections(min_docs=2, max_docs=6),
        st.lists(queries(max_steps=3), min_size=1, max_size=5),
        st.integers(min_value=64, max_value=512),
        st.sampled_from(ALLOCATION_POLICIES),
    )
    def test_random_workloads_byte_identical(
        self, docs, query_list, capacity, allocation
    ):
        single, multi = make_pair(
            docs, allocation=allocation, cycle_data_capacity=capacity
        )
        if not submit_both(single, multi, query_list):
            return
        guard = 0
        while single.pending or multi.pending:
            assert assert_cycles_match(single, multi) is not None
            guard += 1
            assert guard < 200

    @settings(max_examples=15, deadline=None)
    @given(
        document_collections(min_docs=3, max_docs=6),
        document_collections(min_docs=1, max_docs=2),
        st.lists(queries(max_steps=3), min_size=1, max_size=4),
        st.integers(min_value=64, max_value=512),
    )
    def test_equivalence_survives_live_mutation(
        self, docs, extra_docs, query_list, capacity
    ):
        """Mid-drain add/remove mutations keep the K=1 build identical."""
        single, multi = make_pair(docs, cycle_data_capacity=capacity)
        if not submit_both(single, multi, query_list):
            return
        assert_cycles_match(single, multi)

        next_id = max(doc.doc_id for doc in docs) + 1
        for offset, extra in enumerate(extra_docs):
            extra.doc_id = next_id + offset
            for server in (single, multi):
                server.add_document(extra)
        for query in query_list[:2]:
            try:
                single.submit(query, single.clock)
            except ValueError:
                continue
            multi.submit(query, multi.clock)
        victim = docs[0].doc_id
        for server in (single, multi):
            server.remove_document(victim)
        guard = 0
        while single.pending or multi.pending:
            assert_cycles_match(single, multi)
            guard += 1
            assert guard < 200
