"""The paper's claims must hold on every built-in data set.

Section 4.1 cross-checks NITF against NASA ("the findings are pretty
much the same"); this suite extends the check to the DBLP-like set and
pins the claims that must be DTD-invariant: pruning never grows the
index, the two-tier layout is smaller, the two-tier protocol wins on
index look-up, and every client terminates with its exact result set.
"""

from __future__ import annotations

import pytest

from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation

DTDS = ("nitf", "nasa", "dblp")


@pytest.fixture(scope="module", params=DTDS)
def run(request):
    return request.param, run_simulation(
        small_setup(dtd=request.param, validate_cycles=True)
    )


class TestInvariantClaimsAcrossDTDs:
    def test_run_drains(self, run):
        dtd, result = run
        assert result.completed, dtd

    def test_pruning_never_grows(self, run):
        dtd, result = run
        for cycle in result.cycles:
            assert cycle.pci_bytes_one_tier <= cycle.ci_bytes_one_tier, dtd

    def test_two_tier_layout_smaller(self, run):
        dtd, result = run
        for cycle in result.cycles:
            assert cycle.pci_first_tier_bytes < cycle.pci_bytes_one_tier, dtd

    def test_two_tier_protocol_wins_lookup(self, run):
        dtd, result = run
        assert result.mean_index_lookup_bytes(
            "two-tier"
        ) < result.mean_index_lookup_bytes("one-tier"), dtd

    def test_offset_list_is_small(self, run):
        """L_O stays a sliver of the first tier -- the Equation-1 regime."""
        dtd, result = run
        mean_lo = result.mean_offset_list_bytes()
        mean_li = result.mean_first_tier_bytes()
        assert mean_lo < mean_li, dtd

    def test_index_is_small_fraction_of_data(self, run):
        dtd, result = run
        ratio = result.index_to_data_ratio(result.mean_two_tier_bytes())
        assert 0 < ratio < 0.05, (dtd, ratio)

    def test_access_time_protocol_invariant(self, run):
        """Same schedule, same documents: completion cannot depend on the
        index layout."""
        dtd, result = run
        one = result.mean_access_bytes("one-tier")
        two = result.mean_access_bytes("two-tier")
        assert one == pytest.approx(two), dtd


class TestStructuralContrast:
    """The DTDs were chosen as structural extremes; verify they are."""

    @pytest.fixture(scope="class")
    def stats(self):
        from repro.sim.simulation import build_collection
        from repro.xmlkit.stats import collection_stats

        out = {}
        for dtd in DTDS:
            docs = build_collection(small_setup(dtd=dtd))
            out[dtd] = collection_stats(docs)
        return out

    def test_nitf_is_deepest(self, stats):
        assert stats["nitf"].max_depth > stats["dblp"].max_depth

    def test_dblp_is_flattest(self, stats):
        assert stats["dblp"].max_depth <= 4

    def test_nitf_has_most_paths(self, stats):
        assert stats["nitf"].distinct_paths > stats["dblp"].distinct_paths
        assert stats["nitf"].distinct_paths > stats["nasa"].distinct_paths
