"""Cross-module integration tests at realistic (small) scale."""

from __future__ import annotations

import pytest

from repro.broadcast.program import IndexScheme
from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.onetier import OneTierClient
from repro.client.twotier import TwoTierClient
from repro.index.encoding import LabelTable, decode_index, encode_index
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xpath.evaluator import matching_documents


class TestServerClientAgreement:
    def test_clients_download_exactly_their_results(self, nitf_store, nitf_queries):
        """Every client ends with exactly its oracle result set."""
        server = BroadcastServer(nitf_store, cycle_data_capacity=40_000)
        sessions = []
        for query in nitf_queries[:12]:
            server.submit(query, 0)
            sessions.append((query, TwoTierClient(query, 0)))
        for _ in range(100):
            cycle = server.build_cycle()
            if cycle is None:
                break
            for _query, client in sessions:
                client.on_cycle(cycle)
        for query, client in sessions:
            expected = matching_documents(query, nitf_store.documents)
            assert client.satisfied
            assert client.received_doc_ids == expected, str(query)

    def test_server_cycles_match_client_cycle_counts(self, nitf_store, nitf_queries):
        server = BroadcastServer(nitf_store, cycle_data_capacity=40_000)
        query = nitf_queries[0]
        pending = server.submit(query, 0)
        client = TwoTierClient(query, 0)
        while not pending.is_satisfied:
            cycle = server.build_cycle()
            assert cycle is not None
            client.on_cycle(cycle)
        assert client.metrics.cycles_listened == pending.cycles_listened


class TestOnAirEncodingPath:
    def test_cycle_index_encodes_and_decodes(self, nitf_store, nitf_queries):
        """The index a cycle would broadcast survives the wire format."""
        server = BroadcastServer(nitf_store, cycle_data_capacity=40_000)
        for query in nitf_queries[:8]:
            server.submit(query, 0)
        cycle = server.build_cycle()
        pci = cycle.pci
        table = LabelTable.from_index(pci)
        blob = encode_index(pci, table, one_tier=False)
        decoded, _ = decode_index(
            blob, table, one_tier=False, root_label=pci.root.label
        )
        # A client decoding the broadcast bytes sees the same lookups.
        for query in nitf_queries[:8]:
            assert decoded.lookup(query).doc_ids == pci.lookup(query).doc_ids

    def test_one_tier_pointers_reference_real_offsets(self, nitf_store, nitf_queries):
        server = BroadcastServer(
            nitf_store, scheme=IndexScheme.ONE_TIER, cycle_data_capacity=40_000
        )
        for query in nitf_queries[:5]:
            server.submit(query, 0)
        cycle = server.build_cycle()
        table = LabelTable.from_index(cycle.pci)
        blob = encode_index(
            cycle.pci, table, one_tier=True, doc_offsets=cycle.doc_offsets
        )
        _decoded, offsets = decode_index(
            blob, table, one_tier=True, root_label=cycle.pci.root.label
        )
        for doc_id in cycle.doc_ids:
            assert offsets[doc_id] == cycle.doc_offsets[doc_id]


class TestNasaCrossCheck:
    """Paper Section 4.1: 'the findings are pretty much the same' on NASA."""

    def test_nasa_simulation_same_shape(self):
        result = run_simulation(small_setup(dtd="nasa"))
        assert result.completed
        assert result.mean_index_lookup_bytes(
            "two-tier"
        ) < result.mean_index_lookup_bytes("one-tier")
        assert result.mean_pci_bytes() <= result.mean_ci_bytes()

    def test_nasa_index_ratios(self):
        result = run_simulation(small_setup(dtd="nasa"))
        ratio = result.index_to_data_ratio(result.mean_two_tier_bytes())
        assert 0 < ratio < 0.1


class TestMixedCollection:
    def test_virtual_root_end_to_end(self, mixed_docs):
        from repro.xpath.generator import generate_workload

        store = DocumentStore(mixed_docs)
        queries = generate_workload(mixed_docs, 8, seed=17)
        server = BroadcastServer(store, cycle_data_capacity=30_000)
        sessions = [(q, TwoTierClient(q, 0)) for q in queries]
        for query, _client in sessions:
            server.submit(query, 0)
        for _ in range(60):
            cycle = server.build_cycle()
            if cycle is None:
                break
            for _query, client in sessions:
                client.on_cycle(cycle)
        for query, client in sessions:
            assert client.satisfied
            assert client.received_doc_ids == matching_documents(query, mixed_docs)
