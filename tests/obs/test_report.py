"""End-to-end checks of the observed simulation and perf report.

These pin the ISSUE's acceptance criteria: an observed run reports
wall-clock timings for at least six distinct server/client phases, its
byte counters reconcile exactly with the SimulationResult totals, and a
run with observability off (the default) is byte-identical to an
observed one.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.report import report_from_result, report_from_trace
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.tools.trace import export_trace, load_trace


@pytest.fixture(scope="module")
def observed_result():
    with obs.observed() as registry:
        result = run_simulation(small_setup())
    assert result.metrics is not None
    return result, registry


class TestObservedRun:
    def test_at_least_six_distinct_phases(self, observed_result):
        result, _ = observed_result
        spans = result.metrics["spans"]
        server_client = [
            name for name in spans
            if name.startswith(("server.", "client."))
        ]
        assert len(server_client) >= 6, sorted(spans)
        for name in server_client:
            assert spans[name]["count"] > 0

    def test_expected_server_phases_present(self, observed_result):
        result, _ = observed_result
        spans = set(result.metrics["spans"])
        assert {
            "server.query_filtering",
            "server.ci_build",
            "server.prune_to_pci",
            "server.two_tier_split",
            "server.scheduling",
            "server.cycle_assembly",
        } <= spans

    def test_expected_client_phases_present(self, observed_result):
        result, _ = observed_result
        spans = set(result.metrics["spans"])
        assert {
            "client.probe",
            "client.first_tier_read",
            "client.offset_read",
            "client.doc_download",
        } <= spans

    def test_broadcast_byte_counters_reconcile(self, observed_result):
        result, _ = observed_result
        counters = result.metrics["counters"]
        assert counters["server.broadcast_bytes_total"] == sum(
            c.total_bytes for c in result.cycles
        )
        assert counters["server.data_bytes_total"] == sum(
            c.data_bytes for c in result.cycles
        )
        assert counters["server.cycles_total"] == len(result.cycles)

    def test_client_byte_counters_reconcile(self, observed_result):
        result, _ = observed_result
        counters = result.metrics["counters"]
        for protocol in ("one-tier", "two-tier"):
            records = result.records_for(protocol)
            label = f'{{protocol="{protocol}"}}'
            assert counters[f"client.probe_bytes_total{label}"] == sum(
                r.probe_bytes for r in records
            )
            assert counters[f"client.doc_bytes_total{label}"] == sum(
                r.doc_bytes for r in records
            )
            assert counters[f"client.index_bytes_total{label}"] == sum(
                r.index_bytes for r in records
            )

    def test_per_cycle_phase_seconds_populated(self, observed_result):
        result, _ = observed_result
        for cycle in result.cycles:
            assert cycle.phase_seconds, f"cycle {cycle.cycle_number} has no phases"
            assert all(v >= 0.0 for v in cycle.phase_seconds.values())


class TestObservabilityOffIdentity:
    def test_disabled_run_matches_observed_run(self, observed_result):
        """The acceptance bar: instrumentation must never steer results."""
        observed, _ = observed_result
        plain = run_simulation(small_setup())
        assert plain.metrics is None
        assert plain.clients == observed.clients
        # CycleStats differ only in phase_seconds (empty when disabled).
        assert len(plain.cycles) == len(observed.cycles)
        for bare, seen in zip(plain.cycles, observed.cycles):
            assert bare.phase_seconds == {}
            assert bare.total_bytes == seen.total_bytes
            assert bare.data_bytes == seen.data_bytes
            assert bare.doc_count == seen.doc_count
            assert bare.start_time == seen.start_time


class TestPerfReport:
    def test_report_from_result(self, observed_result):
        result, _ = observed_result
        report = report_from_result(result)
        assert report.source == "run"
        assert report.cycles == len(result.cycles)
        assert report.clients == len(result.clients)
        assert len(report.phases) >= 6
        assert report.bytes["broadcast_total"] == sum(
            c.total_bytes for c in result.cycles
        )
        assert (
            report.bytes["data_total"] + report.bytes["index_total"]
            == report.bytes["broadcast_total"]
        )
        per_protocol = report.bytes["clients"]
        for protocol in ("one-tier", "two-tier"):
            records = result.records_for(protocol)
            assert per_protocol[protocol]["sessions"] == len(records)
            assert per_protocol[protocol]["docs"] == sum(
                r.doc_bytes for r in records
            )

    def test_render_and_json(self, observed_result):
        import json

        result, _ = observed_result
        report = report_from_result(result)
        text = report.render()
        assert "Phase timings" in text
        assert "Channel bytes" in text
        assert "server.prune_to_pci" in text
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["source"] == "run"
        assert len(payload["phases"]) >= 6

    def test_report_from_trace_matches_run(self, observed_result, tmp_path):
        result, _ = observed_result
        path = tmp_path / "run.jsonl"
        export_trace(result, path)
        from_trace = report_from_trace(load_trace(path))
        from_run = report_from_result(result)
        assert from_trace.source == "trace"
        assert from_trace.cycles == from_run.cycles
        assert from_trace.bytes["broadcast_total"] == from_run.bytes["broadcast_total"]
        assert from_trace.phases == from_run.phases
        assert from_trace.bytes["clients"] == from_run.bytes["clients"]
