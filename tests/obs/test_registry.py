"""Unit and property tests for the metrics registry."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import obs
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    metric_key,
)


class TestMetricKey:
    def test_plain_name(self):
        assert metric_key("cycles_total", {}) == "cycles_total"

    def test_labels_sorted_and_quoted(self):
        key = metric_key("lookup_bytes", {"scheme": "two-tier", "dtd": "nitf"})
        assert key == 'lookup_bytes{dtd="nitf",scheme="two-tier"}'


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames_total")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_same_name_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        registry.counter("bytes_total", protocol="one-tier").inc(10)
        registry.counter("bytes_total", protocol="two-tier").inc(3)
        snapshot = registry.snapshot()["counters"]
        assert snapshot['bytes_total{protocol="one-tier"}'] == 10
        assert snapshot['bytes_total{protocol="two-tier"}'] == 3

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("pending")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_bucketing(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # 0.5 and 1.0 land in the first bucket (inclusive upper edge),
        # 5.0 in the second, 100.0 in the overflow bucket.
        assert histogram.counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(106.5)
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False)))
    def test_bucket_counts_sum_to_observation_count(self, values):
        """Property: no observation is ever lost or double-counted."""
        histogram = Histogram(DEFAULT_BUCKETS)
        for value in values:
            histogram.observe(value)
        assert sum(histogram.counts) == histogram.count == len(values)


class TestSnapshotAndReset:
    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(1.5)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        with registry.span("d"):
            pass
        json.dumps(registry.snapshot())  # must not raise

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("c").observe(1.0)
        with registry.span("d"):
            pass
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert snapshot["spans"] == {}


class TestNullRegistry:
    def test_everything_is_a_cheap_no_op(self):
        registry = NullRegistry()
        assert not registry.enabled
        registry.counter("a").inc(100)
        registry.gauge("b").set(5)
        registry.histogram("c").observe(1.0)
        with registry.span("d") as span:
            assert span.elapsed == 0.0
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["spans"] == {}
        assert registry.span_totals() == {}

    def test_singletons_shared(self):
        registry = NullRegistry()
        assert registry.counter("a") is registry.counter("b")
        assert registry.span("a") is registry.span("b")


class TestModuleLevelState:
    def test_default_is_disabled(self):
        assert not obs.is_enabled()
        assert isinstance(obs.get_registry(), NullRegistry)

    def test_enable_disable_roundtrip(self):
        try:
            registry = obs.enable()
            assert obs.get_registry() is registry
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_observed_restores_previous(self):
        with obs.observed() as registry:
            obs.counter("inside").inc()
            assert obs.get_registry() is registry
        assert not obs.is_enabled()
        assert registry.snapshot()["counters"] == {"inside": 1}

    def test_observed_accepts_custom_registry(self):
        mine = MetricsRegistry()
        with obs.observed(mine) as registry:
            assert registry is mine
