"""Span timing, nesting and self-time, with a deterministic fake clock."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry, NullRegistry


class FakeClock:
    """perf_counter stand-in: every read advances time by ``tick``."""

    def __init__(self, tick: float = 1.0) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        value = self.now
        self.now += self.tick
        return value

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSpanTiming:
    def test_elapsed_from_injected_clock(self):
        clock = FakeClock(tick=0.0)
        registry = MetricsRegistry(clock=clock)
        with registry.span("work") as span:
            clock.advance(2.5)
        assert span.elapsed == pytest.approx(2.5)
        stats = registry.snapshot()["spans"]["work"]
        assert stats["count"] == 1
        assert stats["total_seconds"] == pytest.approx(2.5)

    def test_repeat_spans_accumulate(self):
        clock = FakeClock(tick=0.0)
        registry = MetricsRegistry(clock=clock)
        for _ in range(3):
            with registry.span("loop"):
                clock.advance(1.0)
        count, total = registry.span_totals()["loop"]
        assert count == 3
        assert total == pytest.approx(3.0)

    def test_min_max_tracked(self):
        clock = FakeClock(tick=0.0)
        registry = MetricsRegistry(clock=clock)
        for duration in (1.0, 5.0, 3.0):
            with registry.span("mix"):
                clock.advance(duration)
        stats = registry.snapshot()["spans"]["mix"]
        assert stats["min_seconds"] == pytest.approx(1.0)
        assert stats["max_seconds"] == pytest.approx(5.0)


class TestSpanNesting:
    def test_self_time_excludes_children(self):
        clock = FakeClock(tick=0.0)
        registry = MetricsRegistry(clock=clock)
        with registry.span("parent"):
            clock.advance(1.0)  # parent's own work
            with registry.span("child"):
                clock.advance(4.0)
            clock.advance(2.0)  # more parent work
        spans = registry.snapshot()["spans"]
        assert spans["parent"]["total_seconds"] == pytest.approx(7.0)
        assert spans["parent"]["self_seconds"] == pytest.approx(3.0)
        assert spans["child"]["self_seconds"] == pytest.approx(4.0)

    def test_grandchildren_roll_up_one_level(self):
        clock = FakeClock(tick=0.0)
        registry = MetricsRegistry(clock=clock)
        with registry.span("a"):
            with registry.span("b"):
                with registry.span("c"):
                    clock.advance(1.0)
        spans = registry.snapshot()["spans"]
        # c's time is charged to b's children, b's total to a's children.
        assert spans["a"]["self_seconds"] == pytest.approx(0.0)
        assert spans["b"]["self_seconds"] == pytest.approx(0.0)
        assert spans["c"]["self_seconds"] == pytest.approx(1.0)

    def test_span_totals_prefix_filter(self):
        registry = MetricsRegistry()
        with registry.span("server.build"):
            pass
        with registry.span("client.probe"):
            pass
        assert set(registry.span_totals("server.")) == {"server.build"}


class TestDisabledSpans:
    def test_null_registry_span_is_reusable_no_op(self):
        registry = NullRegistry()
        span = registry.span("anything")
        with span:
            with registry.span("nested"):
                pass
        assert span.elapsed == 0.0
        assert registry.span_totals() == {}

    def test_module_span_uses_active_registry(self):
        with obs.observed() as registry:
            with obs.span("module.level"):
                pass
        assert "module.level" in registry.span_totals()
        # After the context, spans go to the null sink again.
        with obs.span("after"):
            pass
        assert "after" not in registry.span_totals()
