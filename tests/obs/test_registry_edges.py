"""Registry edge cases: span unwinding, bucket boundaries, snapshot
isolation.

These pin the semantics the telemetry plane (exporter, tracing) builds
on: exact self-time attribution when exceptions unwind nested spans,
inclusive-upper bucket edges, and snapshots that stay frozen while the
registry keeps moving.
"""

from __future__ import annotations

import pytest

from repro.obs.registry import DEFAULT_BUCKETS, Histogram, MetricsRegistry


def _ticking_registry(step: float = 1.0) -> MetricsRegistry:
    state = {"now": 0.0}

    def clock() -> float:
        state["now"] += step
        return state["now"]

    return MetricsRegistry(clock=clock)


class TestSpanUnwinding:
    def test_exception_still_records_span(self):
        registry = _ticking_registry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                raise RuntimeError("boom")
        snap = registry.snapshot()["spans"]
        assert snap["outer"]["count"] == 1
        assert registry.span_depth == 0

    def test_nested_exception_unwinds_whole_tree(self):
        registry = _ticking_registry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                with registry.span("inner"):
                    raise RuntimeError("boom")
        snap = registry.snapshot()["spans"]
        assert snap["outer"]["count"] == 1
        assert snap["inner"]["count"] == 1
        assert registry.span_depth == 0
        # Ticks: outer.start=1, inner.start=2, inner.end=3, outer.end=4:
        # inner elapsed 1, outer elapsed 3, outer self = 3 - 1 = 2.
        assert snap["inner"]["total_seconds"] == pytest.approx(1.0)
        assert snap["outer"]["total_seconds"] == pytest.approx(3.0)
        assert snap["outer"]["self_seconds"] == pytest.approx(2.0)

    def test_self_time_excludes_all_direct_children(self):
        registry = _ticking_registry()
        with registry.span("parent"):
            with registry.span("child"):
                pass
            with registry.span("child"):
                pass
        snap = registry.snapshot()["spans"]
        assert snap["child"]["count"] == 2
        parent = snap["parent"]
        child = snap["child"]
        assert parent["self_seconds"] == pytest.approx(
            parent["total_seconds"] - child["total_seconds"]
        )

    def test_out_of_order_exit_tolerated(self):
        registry = _ticking_registry()
        outer = registry.span("outer")
        inner = registry.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Exit the parent first (a bug in caller code); the registry must
        # not crash or leak stack entries.
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        assert registry.span_depth == 0
        snap = registry.snapshot()["spans"]
        assert snap["outer"]["count"] == 1
        assert snap["inner"]["count"] == 1


class TestHistogramBuckets:
    def test_value_on_bound_is_inclusive_upper(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.counts == [1, 0, 0]

    def test_value_between_bounds(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.5)
        assert hist.counts == [0, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(99.0)
        assert hist.counts == [0, 0, 1]
        assert sum(hist.counts) == hist.count == 1

    def test_zero_and_negative_fall_in_first_bucket(self):
        hist = Histogram(bounds=(0.1, 1.0))
        hist.observe(0.0)
        hist.observe(-1.0)
        assert hist.counts == [2, 0, 0]

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_labelled_histograms_are_distinct(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,), channel=0).observe(0.5)
        registry.histogram("lat", buckets=(1.0,), channel=1).observe(2.0)
        snap = registry.snapshot()["histograms"]
        assert snap['lat{channel="0"}']["counts"] == [1, 0]
        assert snap['lat{channel="1"}']["counts"] == [0, 1]

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 0.0001
        assert DEFAULT_BUCKETS[-1] >= 10.0


class TestSnapshotIsolation:
    def test_snapshot_is_frozen_against_later_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(5)
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        snap = registry.snapshot()
        counter.inc(100)
        hist.observe(0.1)
        registry.gauge("new_gauge").set(1)
        assert snap["counters"]["hits"] == 5
        assert snap["histograms"]["lat"]["counts"] == [1, 0]
        assert snap["histograms"]["lat"]["count"] == 1
        assert "new_gauge" not in snap["gauges"]

    def test_snapshot_lists_are_copies(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        snap["histograms"]["lat"]["counts"][0] = 999
        snap["histograms"]["lat"]["bounds"][0] = 999
        fresh = registry.snapshot()
        assert fresh["histograms"]["lat"]["counts"] == [1, 0]
        assert fresh["histograms"]["lat"]["bounds"] == [1.0]

    def test_reset_survives_open_span(self):
        registry = _ticking_registry()
        with registry.span("outer"):
            registry.counter("c").inc()
            registry.reset()
            with registry.span("inner"):
                pass
        snap = registry.snapshot()
        assert "c" not in snap["counters"]
        # Both spans closed after the reset, so both were re-recorded.
        assert snap["spans"]["outer"]["count"] == 1
        assert snap["spans"]["inner"]["count"] == 1
