"""Structured event log: levels, clocks, sinks, listeners."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.telemetry import EventLog, NullEventLog
from repro.obs.telemetry.events import LEVELS


class TestLevels:
    def test_order(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]

    def test_threshold_filters_sink(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, level="warning")
        log.info("quiet")
        log.warning("loud")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "loud"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLog(level="verbose")
        with pytest.raises(ValueError):
            EventLog().emit("x", level="fatal")


class TestFormats:
    def test_json_lines_sorted_keys(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, json_lines=True)
        log.info("admit", query="//nitf", query_id=3)
        record = json.loads(sink.getvalue())
        assert record == {
            "event": "admit",
            "level": "info",
            "query": "//nitf",
            "query_id": 3,
        }

    def test_human_format(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, json_lines=False)
        log.info("drained", admitted=3, cycles=5)
        assert sink.getvalue() == "drained: admitted=3 cycles=5\n"

    def test_human_format_shows_non_info_level(self):
        sink = io.StringIO()
        log = EventLog(sink=sink, json_lines=False)
        log.warning("degraded_build", cycle=4)
        assert sink.getvalue() == "degraded_build: [warning] cycle=4\n"

    def test_callable_sink(self):
        lines = []
        log = EventLog(sink=lines.append)
        log.info("hello")
        assert len(lines) == 1 and json.loads(lines[0])["event"] == "hello"


class TestClock:
    def test_no_clock_no_timestamp(self):
        sink = io.StringIO()
        EventLog(sink=sink).info("bare")
        assert "ts" not in json.loads(sink.getvalue())

    def test_clock_adapter_stamps(self):
        from repro.net.clock import ManualClock

        clock = ManualClock(start=41.5)
        sink = io.StringIO()
        EventLog(sink=sink, clock=clock).info("stamped")
        assert json.loads(sink.getvalue())["ts"] == 41.5

    def test_zero_arg_callable_clock(self):
        sink = io.StringIO()
        EventLog(sink=sink, clock=lambda: 7.0).info("stamped")
        assert json.loads(sink.getvalue())["ts"] == 7.0

    def test_bad_clock_rejected(self):
        with pytest.raises(TypeError):
            EventLog(clock=42)


class TestListeners:
    def test_listener_sees_all_levels(self):
        """The flight recorder must capture debug events even when the
        sink's threshold would drop them."""
        seen = []
        log = EventLog(sink=None, level="error")
        log.add_listener(seen.append)
        log.debug("fine_grained", step=1)
        log.error("boom")
        assert [r["event"] for r in seen] == ["fine_grained", "boom"]

    def test_listener_gets_structured_dict(self):
        seen = []
        log = EventLog()
        log.add_listener(seen.append)
        log.info("admit", query_id=9)
        assert seen[0]["query_id"] == 9


class TestNullEventLog:
    def test_everything_is_noop(self):
        log = NullEventLog()
        log.add_listener(lambda r: pytest.fail("listener called"))
        log.emit("x")
        log.debug("x")
        log.info("x")
        log.warning("x")
        log.error("x")
        assert log.emitted == 0
        assert not log.enabled_for("error")
