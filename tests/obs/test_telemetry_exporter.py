"""OpenMetrics rendering, linting and the asyncio HTTP exporter."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import (
    CONTENT_TYPE,
    Family,
    MetricsHTTPServer,
    OpenMetricsError,
    lint_openmetrics,
    render_openmetrics,
    scrape,
)


def _populated_registry() -> MetricsRegistry:
    ticks = iter([i * 0.25 for i in range(100)])
    registry = MetricsRegistry(clock=lambda: next(ticks))
    registry.counter("server.cycles").inc(3)
    registry.counter("net.on_air_bytes", channel=0).inc(1024)
    registry.counter("net.on_air_bytes", channel=1).inc(2048)
    registry.gauge("net.pending").set(7)
    hist = registry.histogram("server.build_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    with registry.span("server.cycle_build"):
        pass
    return registry


class TestRender:
    def test_render_lints_clean(self):
        text = render_openmetrics(_populated_registry().snapshot())
        lint_openmetrics(text)  # raises on any grammar violation
        assert text.endswith("# EOF\n")

    def test_counter_family_and_sample_names(self):
        text = render_openmetrics(_populated_registry().snapshot())
        assert "# TYPE server_cycles counter" in text
        assert "server_cycles_total 3" in text

    def test_labels_survive(self):
        text = render_openmetrics(_populated_registry().snapshot())
        assert 'net_on_air_bytes_total{channel="0"} 1024' in text
        assert 'net_on_air_bytes_total{channel="1"} 2048' in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_openmetrics(_populated_registry().snapshot())
        lines = [l for l in text.splitlines() if "server_build_seconds" in l]
        bucket_lines = [l for l in lines if "_bucket" in l]
        assert 'le="0.1"' in bucket_lines[0] and bucket_lines[0].endswith(" 1")
        assert 'le="1"' in bucket_lines[1] and bucket_lines[1].endswith(" 2")
        assert 'le="+Inf"' in bucket_lines[2] and bucket_lines[2].endswith(" 3")
        assert any(l.startswith("server_build_seconds_count 3") for l in lines)

    def test_spans_become_families(self):
        text = render_openmetrics(_populated_registry().snapshot())
        assert 'span_seconds_total{span="server.cycle_build"}' in text
        assert 'span_calls_total{span="server.cycle_build"} 1' in text

    def test_extra_families(self):
        extra = [
            Family("net.connections", "counter").add(5),
            Family("net.draining", "gauge").add(0),
            Family("net.rejected", "counter")
            .add(1, reason="overload")
            .add(2, reason="closed"),
        ]
        text = render_openmetrics(
            {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}},
            extra_families=extra,
        )
        lint_openmetrics(text)
        assert "net_connections_total 5" in text
        assert 'net_rejected_total{reason="closed"} 2' in text

    def test_empty_snapshot_still_valid(self):
        text = render_openmetrics(
            {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}
        )
        lint_openmetrics(text)


class TestLinter:
    def test_missing_eof(self):
        with pytest.raises(OpenMetricsError, match="EOF"):
            lint_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_sample_before_type(self):
        with pytest.raises(OpenMetricsError, match="TYPE"):
            lint_openmetrics("x_total 1\n# EOF\n")

    def test_counter_sample_needs_total_suffix(self):
        # A bare ``x`` sample does not belong to counter family ``x``
        # (counters only expose ``x_total``), so the linter flags it.
        with pytest.raises(OpenMetricsError):
            lint_openmetrics("# TYPE x counter\nx 1\n# EOF\n")

    def test_histogram_bucket_monotonicity(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_count 5\n"
            "h_sum 1.0\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsError, match="cumulative"):
            lint_openmetrics(bad)

    def test_histogram_requires_inf_bucket(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_count 5\n"
            "h_sum 1.0\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsError, match=r"\+Inf"):
            lint_openmetrics(bad)

    def test_garbage_line(self):
        with pytest.raises(OpenMetricsError):
            lint_openmetrics("# TYPE x counter\nnot a sample!!\n# EOF\n")


class TestHTTPServer:
    def _run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=30))

    def test_serves_metrics_and_health(self):
        registry = _populated_registry()

        async def body():
            server = MetricsHTTPServer(
                lambda: render_openmetrics(registry.snapshot()),
                lambda: (200, {"status": "ok"}),
                port=0,
            )
            port = await server.start()
            try:
                status, text = await scrape("127.0.0.1", port)
                health_status, health = await scrape(
                    "127.0.0.1", port, path="/healthz"
                )
                missing_status, _ = await scrape(
                    "127.0.0.1", port, path="/nope"
                )
                return status, text, health_status, health, missing_status
            finally:
                await server.stop()

        status, text, health_status, health, missing = self._run(body())
        assert status == 200
        lint_openmetrics(text)
        assert "server_cycles_total 3" in text
        assert health_status == 200 and '"status": "ok"' in health
        assert missing == 404

    def test_health_propagates_code(self):
        async def body():
            server = MetricsHTTPServer(
                lambda: "# EOF\n",
                lambda: (503, {"status": "draining"}),
                port=0,
            )
            port = await server.start()
            try:
                return await scrape("127.0.0.1", port, path="/healthz")
            finally:
                await server.stop()

        status, text = self._run(body())
        assert status == 503
        assert "draining" in text

    def test_snapshot_isolation_under_concurrent_updates(self):
        """The render happens synchronously between awaits: a scrape never
        sees a half-applied update even while a writer task is mutating
        the registry as fast as the loop allows."""
        registry = MetricsRegistry()

        def metrics_text() -> str:
            # Paired counters are updated together by the writer; a torn
            # read would render them unequal.
            snap = registry.snapshot()
            a = snap["counters"].get("pair.a", 0)
            b = snap["counters"].get("pair.b", 0)
            assert a == b, f"torn read: {a} != {b}"
            return render_openmetrics(snap)

        async def body():
            server = MetricsHTTPServer(
                metrics_text, lambda: (200, {}), port=0
            )
            port = await server.start()
            stop = asyncio.Event()

            async def writer():
                while not stop.is_set():
                    registry.counter("pair.a").inc()
                    registry.counter("pair.b").inc()
                    await asyncio.sleep(0)

            task = asyncio.ensure_future(writer())
            try:
                for _ in range(10):
                    status, text = await scrape("127.0.0.1", port)
                    assert status == 200
                    lint_openmetrics(text)
            finally:
                stop.set()
                await task
                await server.stop()

        self._run(body())

    def test_content_type_constant(self):
        assert "application/openmetrics-text" in CONTENT_TYPE
