"""Flight recorder: ring-buffer capture and replayable artifacts."""

from __future__ import annotations

import json

import pytest

from repro.obs.telemetry import (
    EventLog,
    FlightRecorder,
    load_flight_record,
)
from repro.obs.telemetry.flight import FLIGHT_FORMAT


class TestCapture:
    def test_ring_buffer_bounds(self):
        flight = FlightRecorder(cycle_capacity=3, event_capacity=2)
        for n in range(10):
            flight.record_cycle({"cycle": n})
            flight.record_event({"event": f"e{n}"})
        assert [c["cycle"] for c in flight.cycles] == [7, 8, 9]
        assert [e["event"] for e in flight.events] == ["e8", "e9"]
        assert flight.cycles_seen == 10
        assert flight.events_seen == 10

    def test_records_are_copied(self):
        flight = FlightRecorder()
        record = {"cycle": 1}
        flight.record_cycle(record)
        record["cycle"] = 999
        assert flight.cycles[0]["cycle"] == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(cycle_capacity=0)

    def test_event_log_listener_wiring(self):
        flight = FlightRecorder()
        log = EventLog(sink=None, level="error")
        log.add_listener(flight.record_event)
        log.debug("below_sink_threshold")
        assert flight.events_seen == 1
        assert flight.events[0]["event"] == "below_sink_threshold"


class TestDump:
    def _populated(self) -> FlightRecorder:
        flight = FlightRecorder()
        flight.context["documents"] = 25
        flight.record_cycle({"cycle": 0, "total_bytes": 100})
        flight.record_event({"event": "admit", "query_id": 0})
        return flight

    def test_round_trip(self, tmp_path):
        flight = self._populated()
        path = flight.dump(tmp_path / "art.json", reason="test")
        payload = load_flight_record(path)
        assert payload["reason"] == "test"
        assert payload["format"] == FLIGHT_FORMAT
        assert payload["context"]["documents"] == 25
        assert payload["cycles"][0]["total_bytes"] == 100
        assert payload["events"][0]["event"] == "admit"

    def test_directory_target_names_artifact(self, tmp_path):
        flight = self._populated()
        path = flight.dump(tmp_path, reason="chaos invariant!")
        assert path.parent == tmp_path
        assert path.name == "flight-chaos-invariant--c1.json"
        load_flight_record(path)

    def test_missing_directory_is_created(self, tmp_path):
        flight = self._populated()
        path = flight.dump(tmp_path / "deep" / "flights", reason="sigterm")
        assert path.parent == tmp_path / "deep" / "flights"
        load_flight_record(path)

    def test_dumps_are_tracked(self, tmp_path):
        flight = self._populated()
        first = flight.dump(tmp_path, reason="a")
        flight.record_cycle({"cycle": 1})
        second = flight.dump(tmp_path, reason="b")
        assert flight.dumps == [first, second]
        assert first != second


class TestLoadValidation:
    def test_rejects_wrong_kind(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text(json.dumps({"kind": "not_flight"}))
        with pytest.raises(ValueError, match="not a flight_record"):
            load_flight_record(bad)

    def test_rejects_wrong_format(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text(
            json.dumps(
                {
                    "kind": "flight_record",
                    "format": FLIGHT_FORMAT + 1,
                    "reason": "r",
                    "context": {},
                    "cycles": [],
                    "events": [],
                }
            )
        )
        with pytest.raises(ValueError, match="format"):
            load_flight_record(bad)

    def test_rejects_missing_keys(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text(
            json.dumps({"kind": "flight_record", "format": FLIGHT_FORMAT})
        )
        with pytest.raises(ValueError, match="missing keys"):
            load_flight_record(bad)
