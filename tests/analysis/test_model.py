"""Unit and validation tests for the analytical cost model."""

from __future__ import annotations

import pytest

from repro.analysis.model import (
    CostModelInputs,
    ModelValidation,
    TuningPrediction,
    inputs_from_simulation,
    predict,
    predict_cycles_to_drain,
    predict_one_tier_lookup,
    predict_two_tier_lookup,
    validate_against_simulation,
)
from repro.sim.config import small_setup
from repro.sim.results import SimulationResult
from repro.sim.simulation import run_simulation


class TestClosedForms:
    def test_cycles_to_drain(self):
        assert predict_cycles_to_drain(0, 100) == 1
        assert predict_cycles_to_drain(100, 100) == 1
        assert predict_cycles_to_drain(101, 100) == 2
        assert predict_cycles_to_drain(1000, 100) == 10

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            predict_cycles_to_drain(100, 0)
        with pytest.raises(ValueError):
            predict_cycles_to_drain(-1, 100)

    def test_equation_one_form(self):
        # TT = probe + L_I + n * L_O
        assert predict_two_tier_lookup(1000, 5, 128, 128) == 128 + 1000 + 5 * 128

    def test_one_tier_form(self):
        assert predict_one_tier_lookup(700, 5, 128) == 128 + 5 * 700

    def test_predict_composes(self):
        inputs = CostModelInputs(
            packet_bytes=128,
            cycle_capacity=10_000,
            requested_air_bytes=55_000,
            first_tier_read_bytes=512,
            one_tier_search_bytes=768,
            offset_list_air_bytes=128,
        )
        prediction = predict(inputs)
        assert prediction.cycles == 6
        assert prediction.two_tier_lookup == 128 + 512 + 6 * 128
        assert prediction.one_tier_lookup == 128 + 6 * 768
        assert prediction.improvement > 1


class TestValidationHelpers:
    def test_relative_error(self):
        validation = ModelValidation(
            predicted=TuningPrediction(cycles=10, two_tier_lookup=110, one_tier_lookup=90),
            measured_cycles=10,
            measured_two_tier=100,
            measured_one_tier=100,
        )
        assert validation.cycles_error == 0
        assert validation.two_tier_error == pytest.approx(0.10)
        assert validation.one_tier_error == pytest.approx(0.10)
        assert validation.max_error == pytest.approx(0.10)

    def test_inputs_require_both_protocols(self):
        with pytest.raises(ValueError):
            inputs_from_simulation(SimulationResult(), cycle_capacity=100)


class TestModelAgainstSimulation:
    """The load-bearing test: the closed forms track the simulator."""

    @pytest.fixture(scope="class")
    def run(self):
        config = small_setup()
        return config, run_simulation(config)

    def test_predictions_within_tolerance(self, run):
        config, result = run
        validation = validate_against_simulation(result, config.cycle_data_capacity)
        assert validation.max_error < 0.30, validation

    def test_model_preserves_protocol_ordering(self, run):
        config, result = run
        validation = validate_against_simulation(result, config.cycle_data_capacity)
        assert validation.predicted.two_tier_lookup < validation.predicted.one_tier_lookup
        assert validation.measured_two_tier < validation.measured_one_tier

    def test_model_tracks_capacity_change(self):
        """Halving capacity should roughly double predicted and measured
        cycles alike."""
        small_cap = small_setup(cycle_data_capacity=10_000)
        big_cap = small_setup(cycle_data_capacity=20_000)
        run_small = run_simulation(small_cap)
        run_big = run_simulation(big_cap)
        v_small = validate_against_simulation(run_small, 10_000)
        v_big = validate_against_simulation(run_big, 20_000)
        assert v_small.predicted.cycles > v_big.predicted.cycles
        assert v_small.measured_cycles > v_big.measured_cycles
