"""Tests for the energy model."""

from __future__ import annotations

import pytest

from repro.analysis.energy import (
    PowerProfile,
    SessionEnergy,
    energy_saving,
    mean_energy_by_protocol,
    session_energy,
)
from repro.sim.config import small_setup
from repro.sim.results import ClientRecord
from repro.sim.simulation import run_simulation


def record(tuning: int, access: int, protocol: str = "two-tier") -> ClientRecord:
    return ClientRecord(
        query_text="/a",
        protocol=protocol,
        arrival_time=0,
        result_doc_count=1,
        cycles_listened=1,
        probe_bytes=0,
        index_bytes=tuning,
        offset_bytes=0,
        doc_bytes=0,
        index_lookup_bytes=tuning,
        tuning_bytes=tuning,
        access_bytes=access,
    )


class TestPowerProfile:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"active_watts": 0},
            {"doze_watts": -0.1},
            {"doze_watts": 2.0},  # above active
            {"bandwidth_bytes_per_second": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            PowerProfile(**kwargs)

    def test_seconds_for(self):
        profile = PowerProfile(bandwidth_bytes_per_second=1000)
        assert profile.seconds_for(2500) == 2.5


class TestSessionEnergy:
    def test_decomposition(self):
        profile = PowerProfile(
            active_watts=1.0, doze_watts=0.1, bandwidth_bytes_per_second=1000
        )
        # 1000 B tuning = 1 s active; 5000 B access = 5 s total; 4 s doze.
        energy = session_energy(record(tuning=1000, access=5000), profile)
        assert energy.active_joules == pytest.approx(1.0)
        assert energy.doze_joules == pytest.approx(0.4)
        assert energy.total_joules == pytest.approx(1.4)
        assert energy.active_fraction == pytest.approx(1.0 / 1.4)

    def test_tuning_exceeding_access_clamps_doze(self):
        # Re-listening (rebroadcasts) can make tuning > access.
        energy = session_energy(record(tuning=5000, access=1000))
        assert energy.doze_joules == 0.0


class TestRunLevelEnergy:
    @pytest.fixture(scope="class")
    def run(self):
        return run_simulation(small_setup())

    def test_two_tier_saves_energy(self, run):
        saving = energy_saving(run)
        assert 0 < saving < 1

    def test_ratio_tracks_tuning_when_doze_negligible(self, run):
        """With doze draw ~0 the energy ratio must equal the tuning-byte
        ratio -- the paper's proxy argument, made checkable."""
        profile = PowerProfile(active_watts=1.0, doze_watts=1e-9)
        energies = mean_energy_by_protocol(run, profile)
        tuning_ratio = run.mean_tuning_bytes("two-tier") / run.mean_tuning_bytes(
            "one-tier"
        )
        energy_ratio = (
            energies["two-tier"].total_joules / energies["one-tier"].total_joules
        )
        assert energy_ratio == pytest.approx(tuning_ratio, rel=1e-6)

    def test_doze_dominates_at_low_duty_cycle(self, run):
        """Clients doze most of the session; with realistic draws the doze
        share is material -- exactly why sleeping through the index matters."""
        energies = mean_energy_by_protocol(run)
        two = energies["two-tier"]
        assert two.doze_joules > 0

    def test_unknown_protocol_rejected(self, run):
        with pytest.raises(ValueError):
            energy_saving(run, baseline="carrier-pigeon")
