"""Property tests for the discrete-event engine."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import EventQueue


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 3)), max_size=40))
def test_events_fire_in_time_then_priority_then_fifo_order(schedule):
    """For any schedule, firing order is the stable sort by
    (time, priority, insertion order)."""
    queue = EventQueue()
    fired = []
    for index, (time, priority) in enumerate(schedule):
        queue.schedule(
            time,
            lambda i=index: fired.append(i),
            priority=priority,
        )
    queue.run()
    expected = [
        index
        for index, _ in sorted(
            enumerate(schedule), key=lambda pair: (pair[1][0], pair[1][1], pair[0])
        )
    ]
    assert fired == expected


@given(
    st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 3)), max_size=40),
    st.data(),
)
def test_cancellation_removes_exactly_the_cancelled(schedule, data):
    queue = EventQueue()
    fired = []
    handles = []
    for index, (time, priority) in enumerate(schedule):
        handles.append(
            queue.schedule(time, lambda i=index: fired.append(i), priority=priority)
        )
    cancelled = set()
    if handles:
        for index in data.draw(
            st.lists(st.integers(0, len(handles) - 1), max_size=10)
        ):
            handles[index].cancel()
            cancelled.add(index)
    queue.run()
    assert set(fired) == set(range(len(schedule))) - cancelled


@given(st.lists(st.integers(0, 500), min_size=1, max_size=30))
def test_clock_is_monotone(times):
    queue = EventQueue()
    observed = []
    for time in times:
        queue.schedule(time, lambda: observed.append(queue.now))
    queue.run()
    assert observed == sorted(observed)
    assert queue.now == max(times)


@given(st.integers(1, 8), st.integers(1, 30))
def test_self_rescheduling_chain_terminates(step, count):
    """An event chain rescheduling itself N times fires exactly N times."""
    queue = EventQueue()
    fired = []

    def tick():
        fired.append(queue.now)
        if len(fired) < count:
            queue.schedule_in(step, tick)

    queue.schedule(0, tick)
    queue.run()
    assert fired == [i * step for i in range(count)]
