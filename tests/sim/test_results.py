"""Unit tests for result records and aggregation."""

from __future__ import annotations

import pytest

from repro.client.metrics import ClientMetrics
from repro.sim.results import ClientRecord, CycleStats, SimulationResult


def record(protocol: str, lookup: int = 100, cycles: int = 3) -> ClientRecord:
    return ClientRecord(
        query_text="/a/b",
        protocol=protocol,
        arrival_time=0,
        result_doc_count=5,
        cycles_listened=cycles,
        probe_bytes=128,
        index_bytes=lookup - 128,
        offset_bytes=0,
        doc_bytes=1000,
        index_lookup_bytes=lookup,
        tuning_bytes=lookup + 1000,
        access_bytes=5000,
    )


def cycle_stats(n: int = 0) -> CycleStats:
    return CycleStats(
        cycle_number=n,
        start_time=n * 1000,
        total_bytes=1000,
        data_bytes=800,
        doc_count=3,
        pending_queries=4,
        ci_bytes_one_tier=600,
        pci_bytes_one_tier=500,
        pci_first_tier_bytes=300,
        offset_list_bytes=20,
        pci_nodes=10,
        ci_nodes=12,
    )


class TestClientRecord:
    def test_from_metrics(self):
        metrics = ClientMetrics(arrival_time=10)
        metrics.merge_cycle(probe=128, index=256, offsets=64, docs=512)
        metrics.completion_time = 1010
        metrics.result_doc_count = 2
        rec = ClientRecord.from_metrics("/a", "two-tier", metrics)
        assert rec.index_lookup_bytes == 128 + 256 + 64
        assert rec.tuning_bytes == rec.index_lookup_bytes + 512
        assert rec.access_bytes == 1000

    def test_incomplete_rejected(self):
        with pytest.raises(ValueError):
            ClientRecord.from_metrics("/a", "two-tier", ClientMetrics(arrival_time=0))


class TestSimulationResult:
    def test_means_per_protocol(self):
        result = SimulationResult(
            clients=[
                record("one-tier", lookup=300),
                record("one-tier", lookup=500),
                record("two-tier", lookup=100),
            ]
        )
        assert result.mean_index_lookup_bytes("one-tier") == 400
        assert result.mean_index_lookup_bytes("two-tier") == 100
        assert result.mean_index_lookup_bytes("naive") == 0.0

    def test_cycle_aggregates(self):
        result = SimulationResult(cycles=[cycle_stats(0), cycle_stats(1)])
        assert result.mean_ci_bytes() == 600
        assert result.mean_pci_bytes() == 500
        assert result.mean_two_tier_bytes() == 320

    def test_index_to_data_ratio(self):
        result = SimulationResult(collection_bytes=10_000)
        assert result.index_to_data_ratio(500) == 0.05
        empty = SimulationResult()
        assert empty.index_to_data_ratio(500) == 0.0

    def test_summary_keys(self):
        result = SimulationResult(
            clients=[record("one-tier"), record("two-tier")],
            cycles=[cycle_stats()],
            collection_bytes=100,
        )
        summary = result.summary()
        for key in ("cycles", "mean_cycles_listened", "one_tier_lookup"):
            assert key in summary

    def test_mean_cycles_listened(self):
        result = SimulationResult(
            clients=[record("two-tier", cycles=2), record("two-tier", cycles=4)]
        )
        assert result.mean_cycles_listened("two-tier") == 3.0
