"""Unit tests for the packet-loss model and the lossy client path."""

from __future__ import annotations

import pytest

from repro.sim.config import small_setup
from repro.sim.loss import LOSSLESS, PacketLossModel
from repro.sim.simulation import run_simulation


class TestPacketLossModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PacketLossModel(loss_prob=1.0)
        with pytest.raises(ValueError):
            PacketLossModel(loss_prob=-0.1)

    def test_lossless_never_loses(self):
        assert LOSSLESS.is_lossless
        assert not LOSSLESS.packet_lost(1, 2, 3)
        assert not LOSSLESS.any_lost(1, 2, range(100))
        assert not LOSSLESS.span_lost(1, 2, 0, 50)

    def test_deterministic(self):
        model = PacketLossModel(loss_prob=0.3, seed=5)
        clone = PacketLossModel(loss_prob=0.3, seed=5)
        outcomes_a = [model.packet_lost(1, c, p) for c in range(5) for p in range(20)]
        outcomes_b = [clone.packet_lost(1, c, p) for c in range(5) for p in range(20)]
        assert outcomes_a == outcomes_b

    def test_clients_independent(self):
        model = PacketLossModel(loss_prob=0.5, seed=5)
        a = [model.packet_lost(1, 0, p) for p in range(64)]
        b = [model.packet_lost(2, 0, p) for p in range(64)]
        assert a != b

    def test_rate_roughly_matches(self):
        model = PacketLossModel(loss_prob=0.2, seed=9)
        losses = sum(
            model.packet_lost(0, cycle, packet)
            for cycle in range(20)
            for packet in range(100)
        )
        assert 0.14 < losses / 2000 < 0.26

    def test_span_loss_grows_with_length(self):
        model = PacketLossModel(loss_prob=0.05, seed=3)
        short = sum(model.span_lost(k, 0, 0, 2) for k in range(500))
        long = sum(model.span_lost(k, 1, 0, 50) for k in range(500))
        assert long > short

    def test_empty_span_never_lost(self):
        model = PacketLossModel(loss_prob=0.9, seed=3)
        assert not model.span_lost(0, 0, 0, 0)


class TestLossySimulation:
    def test_lossless_config_matches_reliable_two_tier(self):
        """loss_prob=0 must not change anything."""
        reliable = run_simulation(small_setup())
        assert reliable.completed

    def test_small_loss_completes_with_degradation(self):
        reliable = run_simulation(small_setup())
        lossy = run_simulation(small_setup(loss_prob=0.002, max_cycles=300))
        assert lossy.completed
        # Sessions lengthen, never shorten.
        assert lossy.mean_cycles_listened("two-tier") >= reliable.mean_cycles_listened(
            "two-tier"
        )
        # Every client still gets everything (safety under loss).
        for record in lossy.records_for("two-tier"):
            assert record.result_doc_count > 0

    def test_loss_mode_tracks_single_protocol(self):
        lossy = run_simulation(small_setup(loss_prob=0.002, max_cycles=300))
        assert lossy.records_for("one-tier") == []
        assert len(lossy.records_for("two-tier")) == small_setup().total_queries()

    def test_deterministic_under_loss(self):
        first = run_simulation(small_setup(loss_prob=0.002, max_cycles=300))
        second = run_simulation(small_setup(loss_prob=0.002, max_cycles=300))
        assert first.summary() == second.summary()

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            small_setup(loss_prob=1.0)


class TestServerAcknowledgedDelivery:
    def test_confirm_requires_mode(self, nitf_store):
        from repro.broadcast.server import BroadcastServer
        from repro.xpath.parser import parse_query

        server = BroadcastServer(nitf_store)
        pending = server.submit(parse_query("//title"), 0)
        cycle = server.build_cycle()
        with pytest.raises(RuntimeError):
            server.confirm_delivery(pending, set(), cycle)

    def test_unacknowledged_docs_rebroadcast(self, nitf_store):
        from repro.broadcast.server import BroadcastServer
        from repro.xpath.parser import parse_query

        server = BroadcastServer(
            nitf_store, acknowledged_delivery=True, cycle_data_capacity=10**9
        )
        query = parse_query("//title")
        pending = server.submit(query, 0)
        first = server.build_cycle()
        assert not pending.is_satisfied  # nothing confirmed yet
        # The client missed one document; everything else confirmed.
        received = set(first.doc_ids)
        missed = received.pop()
        server.confirm_delivery(pending, received, first)
        assert pending.remaining_doc_ids == {missed}
        second = server.build_cycle()
        assert second is not None
        assert set(second.doc_ids) == {missed}
        server.confirm_delivery(pending, received | {missed}, second)
        assert pending.is_satisfied
        assert server.pending == []
