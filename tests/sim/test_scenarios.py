"""Scenario workloads: seeded determinism + rate-envelope invariants.

The adaptive control plane is judged on these streams, so they must be
exactly reproducible (same seed, same arrival schedule) and their load
envelopes must match the advertised shape: flash bursts only inside the
middle third, diurnal stays within [N_Q, intensity x N_Q] and repeats
with its period, drift keeps the constant paper rate.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.config import SCENARIOS, small_setup
from repro.sim.workload import DRIFT_SLICES, WorkloadBuilder

SPAN = 10_000  #: synthetic cycle span for arrivals_during


def scenario_config(scenario, **overrides):
    base = dict(
        scenario=scenario,
        scenario_intensity=3.0,
        scenario_period=6,
        n_q=10,
        arrival_cycles=9,
        adaptive=True,
    )
    base.update(overrides)
    return small_setup(**base)


def full_schedule(builder):
    """Every arrival the builder will ever issue, in issue order."""
    plans = list(builder.initial_batch())
    start = 0
    while not builder.exhausted:
        plans.extend(builder.arrivals_during(start, start + SPAN))
        start += SPAN
    return [(plan.arrival_time, str(plan.query)) for plan in plans]


class TestSeededDeterminism:
    @pytest.mark.parametrize("scenario", (None,) + SCENARIOS)
    def test_same_seed_same_schedule(self, nitf_docs, scenario):
        config = scenario_config(scenario, query_seed=123)
        a = full_schedule(WorkloadBuilder(nitf_docs, config))
        b = full_schedule(WorkloadBuilder(nitf_docs, config))
        assert a == b

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_different_seed_different_schedule(self, nitf_docs, scenario):
        a = full_schedule(
            WorkloadBuilder(nitf_docs, scenario_config(scenario, query_seed=1))
        )
        b = full_schedule(
            WorkloadBuilder(nitf_docs, scenario_config(scenario, query_seed=2))
        )
        assert a != b

    def test_drift_concentrates_demand(self, nitf_docs):
        """The drift stream is not the constant-rate stream: arrival
        counts match N_Q, but the query mix shifts with the hot slice."""
        config = scenario_config("drift", query_seed=5)
        builder = WorkloadBuilder(nitf_docs, config)
        assert len(builder._slice_generators) == min(
            DRIFT_SLICES, len(nitf_docs)
        )
        drifted = full_schedule(builder)
        flat = full_schedule(
            WorkloadBuilder(
                nitf_docs, scenario_config(None, query_seed=5)
            )
        )
        assert len(drifted) == len(flat)  # same rate...
        assert [q for _, q in drifted] != [q for _, q in flat]  # ...new mix


class TestRateEnvelopes:
    @given(
        n_q=st.integers(1, 50),
        intensity=st.floats(1.0, 10.0, allow_nan=False),
        period=st.integers(2, 20),
        cycles=st.integers(3, 40),
        cycle=st.integers(0, 39),
    )
    @settings(max_examples=60, deadline=None)
    def test_quota_envelope(self, nitf_docs, n_q, intensity, period, cycles, cycle):
        config = scenario_config(
            None,
            n_q=n_q,
            scenario_intensity=intensity,
            scenario_period=period,
            arrival_cycles=cycles,
        )
        peak = max(n_q, int(n_q * intensity))
        for scenario in SCENARIOS:
            quota = WorkloadBuilder(
                nitf_docs, config.with_(scenario=scenario)
            ).cycle_quota(cycle)
            assert n_q <= quota <= peak
            if scenario == "drift":
                assert quota == n_q

    @given(
        n_q=st.integers(1, 30),
        period=st.integers(2, 12),
        cycle=st.integers(0, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_diurnal_is_periodic(self, nitf_docs, n_q, period, cycle):
        builder = WorkloadBuilder(
            nitf_docs,
            scenario_config("diurnal", n_q=n_q, scenario_period=period),
        )
        assert builder.cycle_quota(cycle) == builder.cycle_quota(cycle + period)

    def test_diurnal_valley_and_peak(self, nitf_docs):
        builder = WorkloadBuilder(
            nitf_docs,
            scenario_config("diurnal", n_q=10, scenario_period=6),
        )
        assert builder.cycle_quota(0) == 10  # valley at phase 0
        assert builder.cycle_quota(3) == 30  # peak at period//2

    def test_flash_bursts_only_in_middle_third(self, nitf_docs):
        config = scenario_config("flash", n_q=10, arrival_cycles=9)
        builder = WorkloadBuilder(nitf_docs, config)
        quotas = [builder.cycle_quota(i) for i in range(9)]
        assert quotas == [10, 10, 10, 30, 30, 30, 10, 10, 10]

    def test_issue_respects_quota(self, nitf_docs):
        """_issue draws exactly cycle_quota arrivals per cycle."""
        config = scenario_config("flash", n_q=4, arrival_cycles=6)
        builder = WorkloadBuilder(nitf_docs, config)
        counts = [len(builder.initial_batch())]
        start = 0
        while not builder.exhausted:
            counts.append(len(builder.arrivals_during(start, start + SPAN)))
            start += SPAN
        assert counts == [builder.cycle_quota(i) for i in range(6)]
