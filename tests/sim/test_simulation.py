"""Integration-grade unit tests for the simulation orchestrator."""

from __future__ import annotations

import pytest

from repro.client.protocol import FirstTierRead
from repro.sim.config import small_setup
from repro.sim.simulation import Simulation, build_collection, run_simulation


@pytest.fixture(scope="module")
def small_result():
    return run_simulation(small_setup())


class TestBuildCollection:
    def test_count_and_dtd(self):
        config = small_setup(document_count=12)
        docs = build_collection(config)
        assert len(docs) == 12
        assert docs[0].root.tag == "nitf"

    def test_nasa_dtd(self):
        config = small_setup(document_count=5, dtd="nasa")
        docs = build_collection(config)
        assert docs[0].root.tag == "dataset"


class TestRun:
    def test_run_completes(self, small_result):
        assert small_result.completed
        assert len(small_result.cycles) > 1

    def test_every_query_has_both_protocol_records(self, small_result):
        config = small_setup()
        expected_sessions = config.total_queries()
        one = small_result.records_for("one-tier")
        two = small_result.records_for("two-tier")
        assert len(one) == expected_sessions
        assert len(two) == expected_sessions

    def test_protocols_complete_simultaneously(self, small_result):
        """Same documents arrive at the same times regardless of index
        scheme, so completion times per session must agree."""
        one = {
            (r.query_text, r.arrival_time): r.access_bytes
            for r in small_result.records_for("one-tier")
        }
        two = {
            (r.query_text, r.arrival_time): r.access_bytes
            for r in small_result.records_for("two-tier")
        }
        assert one == two

    def test_cycle_stats_monotone_times(self, small_result):
        starts = [c.start_time for c in small_result.cycles]
        assert starts == sorted(starts)

    def test_pci_never_exceeds_ci(self, small_result):
        for cycle in small_result.cycles:
            assert cycle.pci_bytes_one_tier <= cycle.ci_bytes_one_tier
            assert cycle.pci_first_tier_bytes <= cycle.pci_bytes_one_tier

    def test_two_tier_lookup_wins_at_scale(self, small_result):
        assert small_result.mean_index_lookup_bytes(
            "two-tier"
        ) < small_result.mean_index_lookup_bytes("one-tier")

    def test_deterministic_across_runs(self):
        first = run_simulation(small_setup())
        second = run_simulation(small_setup())
        assert first.summary() == second.summary()

    def test_naive_baseline_tracked_when_enabled(self):
        result = run_simulation(small_setup(track_naive_baseline=True))
        naive = result.records_for("naive")
        assert len(naive) == small_setup().total_queries()
        assert result.mean_tuning_bytes("naive") > result.mean_tuning_bytes(
            "two-tier"
        )

    def test_full_first_tier_read_costs_more(self):
        selective = run_simulation(small_setup())
        full = run_simulation(
            small_setup(), first_tier_read=FirstTierRead.FULL
        )
        assert full.mean_index_lookup_bytes("two-tier") >= selective.mean_index_lookup_bytes(
            "two-tier"
        )

    def test_max_cycles_truncation_flagged(self):
        config = small_setup(max_cycles=2, arrival_cycles=2)
        result = run_simulation(config)
        assert not result.completed

    def test_validate_cycles_debug_mode(self):
        """Every cycle of a validated run passes the invariant checker
        (the checker raising would fail the run)."""
        result = run_simulation(small_setup(validate_cycles=True))
        assert result.completed

    def test_scheduler_variants_run(self):
        for name in ("fcfs", "mrf", "rxw"):
            result = run_simulation(small_setup(scheduler=name))
            assert result.completed, name
