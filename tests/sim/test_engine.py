"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue


class TestScheduling:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(30, lambda: log.append("c"))
        queue.schedule(10, lambda: log.append("a"))
        queue.schedule(20, lambda: log.append("b"))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        log = []
        for name in "abc":
            queue.schedule(5, lambda n=name: log.append(n))
        queue.run()
        assert log == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        log = []
        queue.schedule(5, lambda: log.append("late"), priority=1)
        queue.schedule(5, lambda: log.append("early"), priority=0)
        queue.run()
        assert log == ["early", "late"]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(10, lambda: queue.schedule(5, lambda: None))
        with pytest.raises(ValueError):
            queue.run()

    def test_schedule_in(self):
        queue = EventQueue()
        fired = []
        queue.schedule(10, lambda: queue.schedule_in(5, lambda: fired.append(queue.now)))
        queue.run()
        assert fired == [15]

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule_in(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        queue = EventQueue()
        log = []
        handle = queue.schedule(10, lambda: log.append("x"))
        handle.cancel()
        queue.schedule(20, lambda: log.append("y"))
        assert queue.run() == 1
        assert log == ["y"]

    def test_pending_count_ignores_cancelled(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        assert queue.pending_count == 1

    def test_next_event_time(self):
        queue = EventQueue()
        assert queue.next_event_time() is None
        first = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        assert queue.next_event_time() == 10
        first.cancel()
        assert queue.next_event_time() == 20


class TestLazyCancellationAccounting:
    """Cancelled entries are dropped at the heap top, counted incrementally."""

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        queue.schedule(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert queue.pending_count == 1
        assert queue._cancelled_in_heap == 1

    def test_cancel_after_execution_is_a_no_op(self):
        queue = EventQueue()
        handle = queue.schedule(10, lambda: None)
        queue.run()
        handle.cancel()  # too late: already ran, heap untouched
        assert handle.cancelled
        assert queue._cancelled_in_heap == 0
        assert queue.pending_count == 0

    def test_counter_drops_as_top_is_pruned(self):
        queue = EventQueue()
        handles = [queue.schedule(t, lambda: None) for t in (10, 20, 30)]
        handles[0].cancel()
        handles[1].cancel()
        assert queue._cancelled_in_heap == 2
        assert queue.next_event_time() == 30  # prunes both cancelled tops
        assert queue._cancelled_in_heap == 0
        assert len(queue._heap) == 1

    def test_cancelled_below_top_stays_in_heap(self):
        queue = EventQueue()
        queue.schedule(10, lambda: None)
        later = queue.schedule(20, lambda: None)
        later.cancel()
        assert queue.next_event_time() == 10  # top is live; no pruning
        assert len(queue._heap) == 2
        assert queue.pending_count == 1

    def test_all_cancelled_queue_reports_empty(self):
        queue = EventQueue()
        handles = [queue.schedule(t, lambda: None) for t in (10, 20)]
        for handle in handles:
            handle.cancel()
        assert queue.is_empty()
        assert queue.next_event_time() is None
        assert queue.run() == 0

    def test_step_skips_cancelled_run_of_entries(self):
        queue = EventQueue()
        log = []
        for t in (10, 20, 30):
            handle = queue.schedule(t, lambda t=t: log.append(t))
            if t < 30:
                handle.cancel()
        event = queue.step()
        assert event is not None and event.time == 30
        assert log == [30]
        assert queue.pending_count == 0


class TestRunLimits:
    def test_until(self):
        queue = EventQueue()
        log = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda t=t: log.append(t))
        assert queue.run(until=20) == 2
        assert log == [10, 20]
        assert not queue.is_empty()

    def test_max_events(self):
        queue = EventQueue()
        log = []
        for t in (10, 20, 30):
            queue.schedule(t, lambda t=t: log.append(t))
        queue.run(max_events=1)
        assert log == [10]

    def test_clock_advances(self):
        queue = EventQueue()
        queue.schedule(42, lambda: None)
        queue.run()
        assert queue.now == 42
        assert queue.processed == 1

    def test_events_scheduling_events(self):
        queue = EventQueue()
        counter = []

        def tick():
            if len(counter) < 5:
                counter.append(queue.now)
                queue.schedule_in(10, tick)

        queue.schedule(0, tick)
        queue.run()
        assert counter == [0, 10, 20, 30, 40]
