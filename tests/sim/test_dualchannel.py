"""Tests for the dual-channel (separate index channel) extension."""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.dualchannel import DualChannelTwoTierClient
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xpath.parser import parse_query


@pytest.fixture(scope="module")
def dual_result():
    return run_simulation(small_setup(dual_channel=True))


class TestDualChannelClientUnit:
    def build_cycle(self, capacity=100_000):
        from tests.xpath.test_evaluator import paper_documents

        store = DocumentStore(paper_documents())
        server = BroadcastServer(store, cycle_data_capacity=capacity)
        server.submit(parse_query("/a//c"), 0)
        return server, server.build_cycle()

    def test_mid_cycle_arrival_uses_on_air_cycle(self):
        _server, cycle = self.build_cycle()
        client = DualChannelTwoTierClient(
            parse_query("/a//c"), arrival_time=cycle.start_time + 1
        )
        assert client.can_use(cycle)
        client.on_cycle(cycle)
        # The on-air index predates this client's admission, so the read
        # is provisional: documents may be caught, but the authoritative
        # result-ID set is deferred to the next cycle's first tier.
        assert client.expected_doc_ids is None
        assert client.received_doc_ids <= {1, 2, 3, 4}
        assert client.metrics.index_bytes > 0  # the read was paid for

    def test_only_later_documents_catchable(self):
        _server, cycle = self.build_cycle()
        # Arrive just before the last document's offset: everything
        # earlier on the data channel is gone.
        last_doc = cycle.doc_ids[-1]
        arrival = cycle.start_time + cycle.doc_offsets[last_doc] - 1
        client = DualChannelTwoTierClient(parse_query("/a//c"), arrival)
        client.on_cycle(cycle)
        # The index-read delay pushes the ready position past even the
        # last document here, so nothing (or at most that one) is caught.
        assert client.received_doc_ids <= {last_doc}

    def test_arrival_before_cycle_behaves_like_single_channel(self):
        _server, cycle = self.build_cycle()
        dual = DualChannelTwoTierClient(parse_query("/a//c"), 0)
        dual.on_cycle(cycle)
        from repro.client.twotier import TwoTierClient

        single = TwoTierClient(parse_query("/a//c"), 0)
        single.on_cycle(cycle)
        assert dual.received_doc_ids == single.received_doc_ids
        assert dual.metrics.doc_bytes == single.metrics.doc_bytes

    def test_missed_documents_arrive_via_rebroadcast(self):
        server, cycle = self.build_cycle(capacity=256)
        # Arrive deep into cycle 0; most docs already gone.
        client = DualChannelTwoTierClient(
            parse_query("/a//c"), arrival_time=cycle.end_time - 1
        )
        client.on_cycle(cycle)
        server.submit(parse_query("/a//c"), cycle.end_time - 1)
        for _ in range(30):
            nxt = server.build_cycle()
            if nxt is None:
                break
            client.on_cycle(nxt)
        assert client.satisfied


class TestDualChannelSimulation:
    def test_records_present(self, dual_result):
        assert len(dual_result.records_for("two-tier-dual")) == small_setup().total_queries()

    def test_access_time_never_worse(self, dual_result):
        """Mid-cycle catching can only help -- but in the on-demand
        regime delivery spans ~n cycles, so the help is marginal (an
        honest negative result; see the dual-channel bench)."""
        dual = dual_result.mean_access_bytes("two-tier-dual")
        single = dual_result.mean_access_bytes("two-tier")
        assert dual <= single

    def test_correctness_unchanged(self, dual_result):
        """Dual-channel clients end with the same result sets (doc counts
        match the single-channel client per session)."""
        singles = {
            (r.query_text, r.arrival_time): r.result_doc_count
            for r in dual_result.records_for("two-tier")
        }
        for record in dual_result.records_for("two-tier-dual"):
            assert singles[(record.query_text, record.arrival_time)] == (
                record.result_doc_count
            )

    def test_cycles_listened_at_most_one_extra(self, dual_result):
        """The dual client additionally listens to (part of) its arrival
        cycle; it must never pay more than that one extra cycle."""
        dual = dual_result.mean_cycles_listened("two-tier-dual")
        single = dual_result.mean_cycles_listened("two-tier")
        assert dual <= single + 1.0

    def test_off_by_default(self):
        result = run_simulation(small_setup())
        assert result.records_for("two-tier-dual") == []
