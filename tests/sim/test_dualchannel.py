"""Tests for the dual-channel (separate index channel) extension."""

from __future__ import annotations

import pytest

from repro.broadcast.server import BroadcastServer, DocumentStore
from repro.client.dualchannel import DualChannelTwoTierClient
from repro.sim.config import small_setup
from repro.sim.simulation import run_simulation
from repro.xpath.parser import parse_query


@pytest.fixture(scope="module")
def dual_result():
    return run_simulation(small_setup(dual_channel=True))


class TestDualChannelClientUnit:
    def build_cycle(self, capacity=100_000):
        from tests.xpath.test_evaluator import paper_documents

        store = DocumentStore(paper_documents())
        server = BroadcastServer(store, cycle_data_capacity=capacity)
        server.submit(parse_query("/a//c"), 0)
        return server, server.build_cycle()

    def test_mid_cycle_arrival_uses_on_air_cycle(self):
        _server, cycle = self.build_cycle()
        client = DualChannelTwoTierClient(
            parse_query("/a//c"), arrival_time=cycle.start_time + 1
        )
        assert client.can_use(cycle)
        client.on_cycle(cycle)
        # The on-air index predates this client's admission, so the read
        # is provisional: documents may be caught, but the authoritative
        # result-ID set is deferred to the next cycle's first tier.
        assert client.expected_doc_ids is None
        assert client.received_doc_ids <= {1, 2, 3, 4}
        assert client.metrics.index_bytes > 0  # the read was paid for

    def test_only_later_documents_catchable(self):
        _server, cycle = self.build_cycle()
        # Arrive just before the last document's offset: everything
        # earlier on the data channel is gone.
        last_doc = cycle.doc_ids[-1]
        arrival = cycle.start_time + cycle.doc_offsets[last_doc] - 1
        client = DualChannelTwoTierClient(parse_query("/a//c"), arrival)
        client.on_cycle(cycle)
        # The index-read delay pushes the ready position past even the
        # last document here, so nothing (or at most that one) is caught.
        assert client.received_doc_ids <= {last_doc}

    def test_arrival_before_cycle_behaves_like_single_channel(self):
        _server, cycle = self.build_cycle()
        dual = DualChannelTwoTierClient(parse_query("/a//c"), 0)
        dual.on_cycle(cycle)
        from repro.client.twotier import TwoTierClient

        single = TwoTierClient(parse_query("/a//c"), 0)
        single.on_cycle(cycle)
        assert dual.received_doc_ids == single.received_doc_ids
        assert dual.metrics.doc_bytes == single.metrics.doc_bytes

    def test_missed_documents_arrive_via_rebroadcast(self):
        server, cycle = self.build_cycle(capacity=256)
        # Arrive deep into cycle 0; most docs already gone.
        client = DualChannelTwoTierClient(
            parse_query("/a//c"), arrival_time=cycle.end_time - 1
        )
        client.on_cycle(cycle)
        server.submit(parse_query("/a//c"), cycle.end_time - 1)
        for _ in range(30):
            nxt = server.build_cycle()
            if nxt is None:
                break
            client.on_cycle(nxt)
        assert client.satisfied


class TestDualChannelSimulation:
    def test_records_present(self, dual_result):
        assert len(dual_result.records_for("two-tier-dual")) == small_setup().total_queries()

    def test_access_time_never_worse(self, dual_result):
        """Mid-cycle catching can only help -- but in the on-demand
        regime delivery spans ~n cycles, so the help is marginal (an
        honest negative result; see the dual-channel bench)."""
        dual = dual_result.mean_access_bytes("two-tier-dual")
        single = dual_result.mean_access_bytes("two-tier")
        assert dual <= single

    def test_correctness_unchanged(self, dual_result):
        """Dual-channel clients end with the same result sets (doc counts
        match the single-channel client per session)."""
        singles = {
            (r.query_text, r.arrival_time): r.result_doc_count
            for r in dual_result.records_for("two-tier")
        }
        for record in dual_result.records_for("two-tier-dual"):
            assert singles[(record.query_text, record.arrival_time)] == (
                record.result_doc_count
            )

    def test_cycles_listened_at_most_one_extra(self, dual_result):
        """The dual client additionally listens to (part of) its arrival
        cycle; it must never pay more than that one extra cycle."""
        dual = dual_result.mean_cycles_listened("two-tier-dual")
        single = dual_result.mean_cycles_listened("two-tier")
        assert dual <= single + 1.0

    def test_off_by_default(self):
        result = run_simulation(small_setup())
        assert result.records_for("two-tier-dual") == []


class TestMidCycleBoundaryRegression:
    """Arrival exactly at a document's offset boundary.

    ``_download_after`` admits a document iff ``offset >= ready_offset``
    where ``ready_offset = (arrival - cycle.start) + index_program`` --
    a document whose first byte airs the instant the client finishes the
    index read is caught; one byte later and it is gone.  This is the
    same boundary predicate the multichannel client's cross-channel
    tune plan reuses (``offset >= free``), so a regression here would
    silently skew K-channel conflict accounting too.
    """

    def _cycle(self):
        from tests.xpath.test_evaluator import paper_documents

        store = DocumentStore(paper_documents())
        server = BroadcastServer(store, cycle_data_capacity=100_000)
        server.submit(parse_query("/a//c"), 0)
        return server.build_cycle()

    def _index_program_bytes(self, cycle):
        return cycle.packed_first_tier.total_bytes + cycle.offset_list_air_bytes

    def test_arrival_exactly_at_offset_boundary_catches_doc(self):
        cycle = self._cycle()
        index_program = self._index_program_bytes(cycle)
        boundary_doc = cycle.doc_ids[-1]
        offset = cycle.doc_offsets[boundary_doc]
        assert offset > index_program  # otherwise arrival is not mid-cycle
        # Choose arrival so the client's ready position lands exactly on
        # the document's first byte: ready = (arrival - start) + program.
        arrival = cycle.start_time + offset - index_program
        client = DualChannelTwoTierClient(parse_query("/a//c"), arrival)
        assert client.can_use(cycle)
        client.on_cycle(cycle)
        assert boundary_doc in client.received_doc_ids
        assert client.caught_mid_cycle == 1

    def test_arrival_one_byte_later_misses_doc(self):
        cycle = self._cycle()
        index_program = self._index_program_bytes(cycle)
        boundary_doc = cycle.doc_ids[-1]
        offset = cycle.doc_offsets[boundary_doc]
        arrival = cycle.start_time + offset - index_program + 1
        client = DualChannelTwoTierClient(parse_query("/a//c"), arrival)
        assert client.can_use(cycle)
        client.on_cycle(cycle)
        assert boundary_doc not in client.received_doc_ids
        assert client.caught_mid_cycle == 0

    def test_boundary_predicate_matches_multichannel_plan(self):
        """The two clients agree on the boundary byte: a multichannel
        plan frees its tuner at exactly ``offset`` and takes the doc."""
        from repro.client.multichannel import MultiChannelTwoTierClient

        cycle = self._cycle()
        client = MultiChannelTwoTierClient(parse_query("/a//c"), 0)
        client.on_cycle(cycle)
        # Single channel, all docs back-to-back: every doc's offset
        # equals the previous doc's end (the 'free' position), so every
        # doc sits exactly on the boundary and all must be taken.
        assert client.received_doc_ids == set(cycle.doc_ids) & set(
            client.expected_doc_ids
        )
        assert client.channel_conflicts == 0
