"""Unit tests for the arrival workload builder."""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.workload import WorkloadBuilder


def make_builder(nitf_docs, **overrides):
    config = SimulationConfig(
        document_count=len(nitf_docs), n_q=10, arrival_cycles=2, **overrides
    )
    return WorkloadBuilder(nitf_docs, config)


class TestWorkloadBuilder:
    def test_initial_batch_at_time_zero(self, nitf_docs):
        builder = make_builder(nitf_docs)
        batch = builder.initial_batch()
        assert len(batch) == 10
        assert all(plan.arrival_time == 0 for plan in batch)

    def test_arrivals_within_cycle_span(self, nitf_docs):
        builder = make_builder(nitf_docs)
        builder.initial_batch()
        arrivals = builder.arrivals_during(1000, 5000)
        assert len(arrivals) == 10
        assert all(1000 <= plan.arrival_time < 5000 for plan in arrivals)

    def test_arrivals_sorted(self, nitf_docs):
        builder = make_builder(nitf_docs)
        builder.initial_batch()
        arrivals = builder.arrivals_during(0, 100_000)
        times = [plan.arrival_time for plan in arrivals]
        assert times == sorted(times)

    def test_window_exhaustion(self, nitf_docs):
        builder = make_builder(nitf_docs)
        builder.initial_batch()
        assert not builder.exhausted
        builder.arrivals_during(0, 100)
        assert builder.exhausted
        assert builder.arrivals_during(100, 200) == []

    def test_empty_span_rejected(self, nitf_docs):
        builder = make_builder(nitf_docs)
        builder.initial_batch()
        with pytest.raises(ValueError):
            builder.arrivals_during(100, 100)

    def test_deterministic(self, nitf_docs):
        first = make_builder(nitf_docs)
        second = make_builder(nitf_docs)
        batch_a = first.initial_batch()
        batch_b = second.initial_batch()
        assert [str(p.query) for p in batch_a] == [str(p.query) for p in batch_b]

    def test_queries_respect_config(self, nitf_docs):
        builder = make_builder(nitf_docs, max_query_depth=4)
        batch = builder.initial_batch()
        assert all(plan.query.depth <= 4 for plan in batch)
