"""Unit tests for simulation configuration."""

from __future__ import annotations

import pytest

from repro.sim.config import SimulationConfig, paper_setup, small_setup


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dtd": "unknown"},
            {"document_count": 0},
            {"n_q": 0},
            {"wildcard_prob": 1.5},
            {"max_query_depth": 0},
            {"cycle_data_capacity": 0},
            {"arrival_cycles": 0},
            {"arrival_cycles": 5, "max_cycles": 4},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)


class TestDefaults:
    def test_paper_setup_matches_table2(self):
        config = paper_setup()
        assert config.document_count == 1000
        assert config.n_q == 500
        assert config.wildcard_prob == 0.1
        assert config.max_query_depth == 10
        assert config.size_model.doc_id_bytes == 2
        assert config.size_model.pointer_bytes == 4

    def test_paper_setup_overrides(self):
        config = paper_setup(n_q=100)
        assert config.n_q == 100
        assert config.document_count == 1000

    def test_small_setup_is_small(self):
        config = small_setup()
        assert config.document_count < 100

    def test_with_creates_copy(self):
        base = SimulationConfig()
        derived = base.with_(n_q=7)
        assert base.n_q == 500
        assert derived.n_q == 7

    def test_total_queries(self):
        assert SimulationConfig(n_q=10, arrival_cycles=3).total_queries() == 30
