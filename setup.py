"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with build isolation) cannot build the
editable wheel.  ``python setup.py develop`` (or ``pip install -e .
--no-build-isolation`` on newer setuptools) uses this shim instead.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
