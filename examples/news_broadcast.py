#!/usr/bin/env python3
"""A newsroom on-demand broadcast: the paper's motivating scenario.

A news provider pushes NITF articles to mobile subscribers over a
broadcast channel.  Subscribers submit XPath subscriptions ("give me
every article with a dateline", "articles quoting an organisation in the
byline", ...) and doze between the packets they actually need.

This example runs the full discrete-event simulation, with clients under
the one-tier baseline protocol and the paper's improved two-tier protocol
on the *same* broadcast schedule, and reports the energy story.

Run:  python examples/news_broadcast.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.xpath.parser import parse_query


def main() -> None:
    config = SimulationConfig(
        dtd="nitf",
        document_count=300,
        n_q=120,  # subscriptions arriving per cycle
        arrival_cycles=2,
        cycle_data_capacity=150_000,
        wildcard_prob=0.1,
        max_query_depth=10,
    )
    print(
        f"simulating: {config.document_count} articles, "
        f"{config.total_queries()} subscriptions, "
        f"{config.cycle_data_capacity // 1000} KB data per cycle"
    )

    result = run_simulation(config)

    print(f"\nbroadcast ran {len(result.cycles)} cycles "
          f"({'drained' if result.completed else 'truncated'})")
    print(f"collection size        : {result.collection_bytes:>10,} B")
    print(f"mean CI (one-tier)     : {result.mean_ci_bytes():>10,.0f} B")
    print(f"mean PCI (one-tier)    : {result.mean_pci_bytes():>10,.0f} B")
    print(f"mean two-tier (L_I+L_O): {result.mean_two_tier_bytes():>10,.0f} B "
          f"({100 * result.index_to_data_ratio(result.mean_two_tier_bytes()):.2f}% of data)")

    one = result.mean_index_lookup_bytes("one-tier")
    two = result.mean_index_lookup_bytes("two-tier")
    print(f"\nper-subscriber index look-up tuning (energy proxy):")
    print(f"  one-tier protocol : {one:>10,.0f} B  (re-searches the index every cycle)")
    print(f"  two-tier protocol : {two:>10,.0f} B  (first tier once, then offset lists)")
    print(f"  improvement       : {one / two:>10.1f}x")
    print(f"  cycles per query  : {result.mean_cycles_listened('two-tier'):.1f} "
          f"(paper reports 11.8)")

    # A few concrete subscriptions and their outcomes.
    print("\nsample subscriptions:")
    seen = set()
    for record in result.records_for("two-tier"):
        if record.query_text in seen:
            continue
        seen.add(record.query_text)
        print(
            f"  {record.query_text:50.50s} {record.result_doc_count:>4} articles, "
            f"{record.cycles_listened:>3} cycles, "
            f"{record.index_lookup_bytes:>7,} B index look-up"
        )
        if len(seen) == 6:
            break


if __name__ == "__main__":
    main()
