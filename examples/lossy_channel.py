#!/usr/bin/env python3
"""Error-prone channel: how the two-tier protocol degrades under loss.

Extension beyond the paper (which assumes a reliable channel): packets
are erased i.i.d.; the server runs acknowledged delivery so unreceived
documents stay scheduled.  A lost first-tier packet costs the client a
retry cycle; a lost offset list blinds it for one cycle; a lost document
frame costs a rebroadcast -- and since a document spans dozens of
128-byte frames, document erasures dominate even at sub-percent rates.

Run:  python examples/lossy_channel.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.experiments.report import print_table


def main() -> None:
    base = SimulationConfig(
        document_count=200,
        n_q=80,
        arrival_cycles=2,
        cycle_data_capacity=120_000,
        max_cycles=400,
    )
    print(
        f"workload: {base.total_queries()} queries over "
        f"{base.document_count} documents; two-tier protocol with "
        "acknowledged delivery\n"
    )

    rows = []
    for loss in (0.0, 0.001, 0.002, 0.005):
        result = run_simulation(base.with_(loss_prob=loss))
        per_doc_frames = 40  # ~5 KB documents in 128 B frames
        doc_survival = (1 - loss) ** per_doc_frames
        rows.append(
            (
                f"{loss:.3f}",
                f"{100 * doc_survival:.1f}%",
                len(result.cycles),
                result.mean_cycles_listened("two-tier"),
                result.mean_index_lookup_bytes("two-tier"),
                result.mean_tuning_bytes("two-tier"),
                "yes" if result.completed else "no",
            )
        )

    print_table(
        "Two-tier protocol under packet erasures",
        (
            "loss/packet",
            "~doc survival",
            "cycles run",
            "cycles/query",
            "lookup B",
            "tuning B",
            "drained",
        ),
        rows,
        note=(
            "Document frames dominate: at 0.5% per-packet loss a ~40-frame "
            "document only survives ~82% of broadcasts, so rebroadcasts, "
            "not index retries, drive the extra cycles."
        ),
    )


if __name__ == "__main__":
    main()
