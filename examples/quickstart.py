#!/usr/bin/env python3
"""Quickstart: one index, one broadcast cycle, one client.

Builds a small NITF-like collection, admits a handful of XPath queries to
the broadcast server, assembles a two-tier cycle and walks a client
through the improved access protocol -- printing each step's byte cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BroadcastServer,
    DocumentStore,
    TwoTierClient,
    generate_collection,
    generate_workload,
    nitf_like_dtd,
)


def main() -> None:
    # 1. The server's document collection (the paper generates 1000 NITF
    #    documents; 50 keep this example instant).
    docs = generate_collection(nitf_like_dtd(), 50, seed=7)
    store = DocumentStore(docs)
    print(f"collection: {len(docs)} documents, {store.total_data_bytes():,} bytes")

    # 2. Mobile clients submit XPath queries over the uplink.
    queries = generate_workload(docs, 8, seed=11)
    server = BroadcastServer(store, cycle_data_capacity=60_000)
    for query in queries:
        pending = server.submit(query, arrival_time=0)
        print(f"  submitted {str(query):45s} -> {len(pending.result_doc_ids)} docs")

    # 3. The server assembles the first broadcast cycle: pruned compact
    #    index (first tier), offset list (second tier), then documents.
    cycle = server.build_cycle()
    print(
        f"\ncycle 0: {cycle.total_bytes:,} bytes on air "
        f"(L_I={cycle.first_tier_bytes:,} B, "
        f"L_O={cycle.offset_list.size_bytes} B, "
        f"{len(cycle.doc_ids)} documents)"
    )
    print(f"  PCI: {cycle.pci.node_count} nodes, pruned from the requested set")

    # 4. A client runs the improved two-tier protocol on that cycle.
    client = TwoTierClient(queries[0], arrival_time=0)
    client.on_cycle(cycle)
    while not client.satisfied:
        next_cycle = server.build_cycle()
        assert next_cycle is not None
        client.on_cycle(next_cycle)

    m = client.metrics
    print(f"\nclient for {queries[0]}:")
    print(f"  initial probe      : {m.probe_bytes:>8,} B")
    print(f"  first-tier search  : {m.index_bytes:>8,} B (read once)")
    print(f"  second-tier reads  : {m.offset_bytes:>8,} B over {m.cycles_listened} cycles")
    print(f"  documents          : {m.doc_bytes:>8,} B ({m.result_doc_count} docs)")
    print(f"  tuning time        : {m.tuning_bytes:>8,} B total")
    print(f"  access time        : {m.access_bytes:>8,} B of broadcast elapsed")


if __name__ == "__main__":
    main()
