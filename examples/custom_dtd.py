#!/usr/bin/env python3
"""Bring your own schema: a real DTD file end to end.

Writes a conference-programme DTD to disk, loads it with the DTD-file
parser, generates a collection from it, persists the collection, reloads
it, and runs a broadcast round over it -- the whole bring-your-own-data
workflow.

Run:  python examples/custom_dtd.py
"""

from __future__ import annotations

import tempfile
import pathlib

from repro import BroadcastServer, DocumentStore, TwoTierClient, parse_query
from repro.tools.persist import load_collection, save_collection
from repro.xmlkit import load_dtd
from repro.xmlkit.generator import DocumentGenerator, GeneratorConfig
from repro.xmlkit.stats import collection_stats
from repro.xpath.generator import generate_workload

CONFERENCE_DTD = """
<!-- a conference programme -->
<!ENTITY % person "(name, affiliation?)">
<!ELEMENT programme (day+)>
<!ATTLIST programme year CDATA #REQUIRED venue CDATA #IMPLIED>
<!ELEMENT day (session+)>
<!ATTLIST day date CDATA #REQUIRED>
<!ELEMENT session (title, chair?, talk+)>
<!ELEMENT chair %person;>
<!ELEMENT talk (title, speaker+, abstract?)>
<!ATTLIST talk slot CDATA #IMPLIED>
<!ELEMENT speaker %person;>
<!ELEMENT name (#PCDATA)>
<!ELEMENT affiliation (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT abstract (#PCDATA | title)*>
"""


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-custom-"))
    dtd_path = workdir / "conference.dtd"
    dtd_path.write_text(CONFERENCE_DTD, encoding="utf-8")

    # 1. Load the DTD file (ELEMENT/ATTLIST/parameter entities).
    dtd = load_dtd(dtd_path)
    print(f"loaded {dtd_path.name}: root <{dtd.root}>, "
          f"{len(dtd.element_names())} element types")

    # 2. Generate a collection from it and persist it.
    docs = DocumentGenerator(dtd, GeneratorConfig(seed=13)).generate_many(80)
    print(collection_stats(docs).summary())
    save_collection(docs, workdir / "corpus")
    reloaded = load_collection(workdir / "corpus")
    assert all(
        a.root.structurally_equal(b.root) for a, b in zip(docs, reloaded)
    )
    print(f"persisted and reloaded {len(reloaded)} documents byte-identically")

    # 3. Broadcast round over the custom collection.
    server = BroadcastServer(DocumentStore(reloaded), cycle_data_capacity=60_000)
    queries = generate_workload(reloaded, 12, seed=3)
    queries.append(parse_query("/programme/day/session/talk/speaker/name"))
    for query in queries:
        server.submit(query, arrival_time=0)

    client = TwoTierClient(queries[-1], arrival_time=0)
    while not client.satisfied:
        cycle = server.build_cycle()
        assert cycle is not None
        client.on_cycle(cycle)
    m = client.metrics
    print(f"\nclient for {queries[-1]}:")
    print(f"  {m.result_doc_count} result documents over {m.cycles_listened} cycles")
    print(f"  index look-up: {m.index_lookup_bytes:,} B; documents: {m.doc_bytes:,} B")
    print(f"\nworkspace: {workdir}")


if __name__ == "__main__":
    main()
