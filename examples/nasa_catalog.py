#!/usr/bin/env python3
"""The paper's second data set: NASA-like astronomy catalogues.

Section 4.1 evaluates a NASA document set and notes "the findings are
pretty much the same".  This example reproduces that cross-check: the
same pipeline over the NASA-like DTD, comparing index sizes and both
client protocols, plus the exhaustive no-index baseline.

Run:  python examples/nasa_catalog.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.baselines.naive import exhaustive_listening_bound
from repro.baselines.perdoc import PerDocumentIndexBaseline
from repro.broadcast.server import DocumentStore
from repro.sim.simulation import build_collection


def main() -> None:
    config = SimulationConfig(
        dtd="nasa",
        document_count=250,
        n_q=100,
        arrival_cycles=2,
        cycle_data_capacity=150_000,
        track_naive_baseline=True,
    )
    docs = build_collection(config)
    store = DocumentStore(docs)
    print(
        f"NASA-like catalogue: {len(docs)} datasets, "
        f"{store.total_data_bytes():,} bytes"
    )

    # Index-size story, including the prior-work embedded-index baseline.
    perdoc = PerDocumentIndexBaseline().measure(docs, store.guides)
    print(f"\nper-document embedded indexes (prior work): "
          f"{perdoc.index_bytes:,} B = {100 * perdoc.overhead_ratio:.1f}% of data")

    result = run_simulation(config, documents=docs)
    two_tier = result.mean_two_tier_bytes()
    print(f"two-tier air index (this paper)            : "
          f"{two_tier:,.0f} B = {100 * result.index_to_data_ratio(two_tier):.2f}% of data")

    # Tuning-time story across all three client strategies.
    print("\nmean tuning time per query (bytes in active mode):")
    for protocol in ("naive", "one-tier", "two-tier"):
        tuning = result.mean_tuning_bytes(protocol)
        lookup = result.mean_index_lookup_bytes(protocol)
        print(f"  {protocol:>9}: {tuning:>12,.0f} B total "
              f"({lookup:>10,.0f} B index look-up)")
    bound = exhaustive_listening_bound(result)
    print(f"\nexhaustive-listening lower bound (no index): {bound:,.0f} B")
    print("same findings as the NITF set: two-tier smallest index, "
          "lowest tuning time, stable across cycles")


if __name__ == "__main__":
    main()
