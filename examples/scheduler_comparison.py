#!/usr/bin/env python3
"""Scheduler study: how the per-cycle document pick shapes the system.

The paper adopts the Lee & Lo allocation [8] because queries are
multi-item requests: a client is served only when *all* its result
documents have arrived.  This example pits that completion-oriented
scheduler against FCFS, most-requested-first and RxW on an identical
workload and reports cycles-per-query, access time and tuning time.

Run:  python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.broadcast.scheduling import scheduler_names
from repro.experiments.report import print_table


def main() -> None:
    base = SimulationConfig(
        document_count=300,
        n_q=120,
        arrival_cycles=2,
        cycle_data_capacity=120_000,
    )
    print(
        f"workload: {base.total_queries()} queries over "
        f"{base.document_count} documents, "
        f"{base.cycle_data_capacity // 1000} KB data per cycle\n"
    )

    rows = []
    for name in scheduler_names():
        result = run_simulation(base.with_(scheduler=name))
        rows.append(
            (
                name,
                len(result.cycles),
                result.mean_cycles_listened("two-tier"),
                result.mean_access_bytes("two-tier"),
                result.mean_index_lookup_bytes("two-tier"),
                "yes" if result.completed else "no",
            )
        )

    rows.sort(key=lambda row: row[2])
    print_table(
        "Scheduler comparison (identical workload)",
        (
            "scheduler",
            "cycles run",
            "cycles/query",
            "mean access B",
            "two-tier lookup B",
            "drained",
        ),
        rows,
        note=(
            "leelo = the paper's completion-oriented Lee-Lo allocation; "
            "fewer cycles/query means clients finish (and sleep) sooner."
        ),
    )


if __name__ == "__main__":
    main()
