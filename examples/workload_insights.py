#!/usr/bin/env python3
"""Workload analysis: redundancy, containment and the energy bill.

Two analyses the broadcast operator would actually run:

1. **containment analysis** -- how much of the pending workload is
   duplicated or subsumed by wider queries (exact regular-language
   inclusion on the paper's linear fragment);
2. **energy accounting** -- what a session costs a handset in Joules
   under a realistic WNIC power profile, per protocol.

Run:  python examples/workload_insights.py
"""

from __future__ import annotations

from repro import (
    SimulationConfig,
    generate_collection,
    generate_workload,
    nitf_like_dtd,
    parse_query,
    run_simulation,
)
from repro.analysis.energy import PowerProfile, mean_energy_by_protocol
from repro.experiments.report import print_table
from repro.xpath.containment import analyse_workload, contains


def main() -> None:
    docs = generate_collection(nitf_like_dtd(), 150, seed=7)

    # --- 1. Containment / redundancy -------------------------------------
    workload = generate_workload(docs, 60, seed=11, wildcard_descendant_prob=0.2)
    workload += [parse_query("//title"), parse_query("/nitf//title")]
    analysis = analyse_workload(workload)
    print(f"workload: {analysis.total} queries")
    print(f"  distinct effective : {len(analysis.effective)}")
    print(f"  duplicates         : {len(analysis.duplicates_of)}")
    print(f"  subsumed by wider  : {len(analysis.subsumed_by)}")
    print(f"  redundant fraction : {analysis.redundant_fraction:.0%}\n")

    shown = 0
    for narrow, wide in analysis.subsumed_by.items():
        print(f"  {str(workload[narrow]):45.45s} ⊆ {workload[wide]}")
        shown += 1
        if shown == 5:
            break
    assert contains(parse_query("//title"), parse_query("/nitf//title"))

    # --- 2. Energy accounting ---------------------------------------------
    config = SimulationConfig(
        document_count=150,
        n_q=60,
        arrival_cycles=2,
        cycle_data_capacity=100_000,
        track_naive_baseline=True,
    )
    result = run_simulation(config, documents=docs)
    profile = PowerProfile()  # 1 W active / 50 mW doze / 1 Mbit/s
    energies = mean_energy_by_protocol(result, profile)
    rows = [
        (
            protocol,
            energy.active_joules,
            energy.doze_joules,
            energy.total_joules,
            f"{energy.active_fraction:.0%}",
        )
        for protocol, energy in energies.items()
    ]
    print()
    print_table(
        "Mean per-session energy (1W active / 50mW doze / 1Mbit/s)",
        ("protocol", "active J", "doze J", "total J", "active share"),
        rows,
        note=(
            "Document downloads dominate everyone's active term; the index "
            "scheme decides the rest -- and lets the handset doze through it."
        ),
    )


if __name__ == "__main__":
    main()
