#!/usr/bin/env python3
"""The YFilter substrate as a standalone publish/subscribe service.

The broadcast server uses the filtering engine internally, but it is a
complete XML filtering system in its own right (the paper's reference
[3]): thousands of subscriptions compiled into one shared-path NFA,
documents streamed through as SAX events, matches reported per document.

This example registers subscriptions -- including ones with the
predicate extension (``[@attr]``, ``[@attr="v"]``, ``[rel/path]``),
which the engine evaluates in two phases -- and streams a DBLP-like
bibliography feed through them.

Run:  python examples/filtering_service.py
"""

from __future__ import annotations

from repro import dblp_like_dtd, generate_collection, parse_query
from repro.filtering import YFilterEngine


def main() -> None:
    # The "publisher": a feed of bibliography records.
    feed = generate_collection(dblp_like_dtd(), 120, seed=21)
    print(f"feed: {len(feed)} documents\n")

    # The "subscribers": structural and predicated XPath subscriptions.
    subscriptions = [
        "/dblp/article",
        "/dblp/article/journal",
        "//booktitle",
        "/dblp/*/author",
        "/dblp/phdthesis/school",
        # Predicate extension: these go beyond the paper's grammar.
        "/dblp/article[volume]",
        "/dblp/inproceedings[crossref]/title",
        "/dblp/book[@key]",
        '/dblp/www[author]',
    ]
    queries = [parse_query(text) for text in subscriptions]
    engine = YFilterEngine.from_queries(queries)
    print(
        f"compiled {len(queries)} subscriptions into one NFA "
        f"({engine.nfa.state_count} shared states)\n"
    )

    # Stream the feed through the engine (the streaming mode consumes
    # SAX start/end events, exactly like a wire parser would produce).
    result = engine.filter_collection(feed, streaming=True)
    print(f"{'subscription':42s} {'matches':>8}")
    print("-" * 52)
    for index, text in enumerate(subscriptions):
        print(f"{text:42s} {len(result.docs_per_query[index]):>8}")

    # Per-document fan-out: which subscriptions does one record satisfy?
    sample = feed[0]
    matched = sorted(result.queries_per_doc.get(sample.doc_id, ()))
    print(f"\ndocument {sample.doc_id} satisfies subscriptions: "
          f"{[subscriptions[i] for i in matched]}")


if __name__ == "__main__":
    main()
