#!/usr/bin/env python3
"""Inspect the on-air byte format of the two-tier index.

Builds a pruned compact index over the paper's running example (the five
documents d1..d5 of Figure 2), encodes both tiers to their wire format,
hexdumps the leading packets and decodes them back -- demonstrating that
a client can reconstruct the index from the broadcast bytes alone.

Run:  python examples/wire_format.py
"""

from __future__ import annotations

from repro import (
    BroadcastServer,
    DocumentStore,
    XMLDocument,
    parse_query,
)
from repro.index.encoding import (
    LabelTable,
    decode_index,
    decode_offset_list,
    encode_index,
    encode_offset_list,
)
from repro.xmlkit.model import build_element


def paper_documents():
    """The running example's five documents (Figure 2(a) reconstruction)."""
    return [
        XMLDocument(0, build_element("a", build_element("b", build_element("a")))),
        XMLDocument(
            1,
            build_element(
                "a",
                build_element("b", build_element("a"), build_element("c")),
                build_element("c", build_element("b")),
            ),
        ),
        XMLDocument(2, build_element("a", build_element("b"), build_element("c"))),
        XMLDocument(3, build_element("a", build_element("c", build_element("a")))),
        XMLDocument(
            4,
            build_element(
                "a", build_element("b"), build_element("c", build_element("a"))
            ),
        ),
    ]


def hexdump(blob: bytes, limit: int = 96) -> str:
    lines = []
    for offset in range(0, min(len(blob), limit), 16):
        chunk = blob[offset : offset + 16]
        hexes = " ".join(f"{byte:02x}" for byte in chunk)
        lines.append(f"  {offset:04x}  {hexes}")
    if len(blob) > limit:
        lines.append(f"  ... ({len(blob) - limit} more bytes)")
    return "\n".join(lines)


def main() -> None:
    docs = paper_documents()
    server = BroadcastServer(DocumentStore(docs), cycle_data_capacity=10_000)
    for text in ("/a/b/a", "/a//c", "/a/c/*"):
        server.submit(parse_query(text), 0)
    cycle = server.build_cycle()
    pci = cycle.pci

    print(f"PCI: {pci.node_count} nodes over labels "
          f"{sorted({n.label for n in pci.nodes})}")
    for node in pci.nodes:
        print(f"  n{node.node_id} {'/'.join(node.path_from_root()):12s} "
              f"kind={node.kind.value:8s} docs={list(node.doc_ids)}")

    table = LabelTable.from_index(pci)
    first_tier = encode_index(pci, table, one_tier=False)
    print(f"\nfirst tier on air: {len(first_tier)} bytes "
          f"({pci.size_model.packets_for(len(first_tier))} packet(s) of 128 B)")
    print(hexdump(first_tier))

    second_tier = encode_offset_list(cycle.offset_list)
    print(f"\nsecond tier on air: {len(second_tier)} bytes, "
          f"{cycle.offset_list.doc_count} (doc, offset) entries")
    print(hexdump(second_tier))

    # A client decodes the broadcast bytes and answers a query locally.
    decoded, _ = decode_index(
        first_tier, table, one_tier=False, root_label=pci.root.label
    )
    offsets = decode_offset_list(second_tier)
    query = parse_query("/a//c")
    ids = decoded.lookup(query).doc_ids
    print(f"\ndecoded lookup {query}: result doc ids {list(ids)}")
    print(f"second-tier join: {offsets.lookup(ids)}")


if __name__ == "__main__":
    main()
